#include "core/paper_histories.h"

#include "common/check.h"
#include "history/builder.h"

namespace adya {
namespace {

History Build(HistoryBuilder& b) {
  auto h = b.Build();
  ADYA_CHECK_MSG(h.ok(), "paper history must be well-formed: " << h.status());
  return std::move(*h);
}

/// T0 installs the bank-account invariant state x = y = 5 (x + y = 10).
void BankInit(HistoryBuilder& b) {
  b.W(0, "x", 5).W(0, "y", 5).Commit(0);
}

}  // namespace

PaperHistory MakeH1() {
  HistoryBuilder b;
  BankInit(b);
  // r1(x,5) w1(x,1) r2(x,1) r2(y,5) c2 r1(y,5) w1(y,9) c1
  b.R(1, "x", 0).W(1, "x", 1);
  b.R(2, "x", 1).R(2, "y", 0).Commit(2);
  b.R(1, "y", 0).W(1, "y", 9).Commit(1);
  return PaperHistory{
      "H1", "§3",
      "T2 observes x + y = 6 (invariant is 10): non-serializable. Ruled out "
      "by P1 in the preventative approach and by G2 at PL-3.",
      Build(b)};
}

PaperHistory MakeH2() {
  HistoryBuilder b;
  BankInit(b);
  // r2(x,5) r1(x,5) w1(x,1) r1(y,5) w1(y,9) c1 r2(y,9) c2
  b.R(2, "x", 0);
  b.R(1, "x", 0).W(1, "x", 1).R(1, "y", 0).W(1, "y", 9).Commit(1);
  b.R(2, "y", 1).Commit(2);
  return PaperHistory{
      "H2", "§3",
      "T2 observes x + y = 14: non-serializable. Ruled out by P2 in the "
      "preventative approach and by G2 at PL-3.",
      Build(b)};
}

PaperHistory MakeH1Prime() {
  HistoryBuilder b;
  BankInit(b);
  // r1(x,5) w1(x,1) r1(y,5) w1(y,9) r2(x,1) r2(y,9) c1 c2
  b.R(1, "x", 0).W(1, "x", 1).R(1, "y", 0).W(1, "y", 9);
  b.R(2, "x", 1).R(2, "y", 1);
  b.Commit(1).Commit(2);
  return PaperHistory{
      "H1'", "§3",
      "T2 reads both of T1's (still uncommitted) writes and can be "
      "serialized after T1. P1 forbids it; PL-3 accepts it.",
      Build(b)};
}

PaperHistory MakeH2Prime() {
  HistoryBuilder b;
  BankInit(b);
  // r2(x,5) r1(x,5) w1(x,1) r1(y,5) r2(y,5) w1(y,9) c2 c1
  b.R(2, "x", 0);
  b.R(1, "x", 0).W(1, "x", 1).R(1, "y", 0);
  b.R(2, "y", 0);
  b.W(1, "y", 9);
  b.Commit(2).Commit(1);
  return PaperHistory{
      "H2'", "§3",
      "T2 reads the old values of x and y although T1 overwrites them "
      "concurrently; serializable in the order T2, T1. P2 forbids it; PL-3 "
      "accepts it.",
      Build(b)};
}

PaperHistory MakeHWriteOrder() {
  HistoryBuilder b;
  // w1(x1) w2(x2) w2(y2) c1 c2 r3(x1) w3(x3) w4(y4) a4   [x2 << x1]
  b.W(1, "x", 1).W(2, "x", 2).W(2, "y", 2).Commit(1).Commit(2);
  b.R(3, "x", 1).W(3, "x", 3);
  b.W(4, "y", 4).Abort(4);
  // T3 stays unfinished (auto-aborted): no constraint on x3 or y4.
  b.VersionOrder("x", {2, 1});
  return PaperHistory{
      "H_write_order", "§4.2",
      "The system chose version order x2 << x1 although T1 committed before "
      "T2: the serialization order is T2, T1. Uncommitted/aborted versions "
      "(x3, y4) are unordered.",
      Build(b)};
}

PaperHistory MakeHPredRead() {
  HistoryBuilder b;
  b.Relation("Emp");
  b.Object("x", "Emp").Object("y", "Emp");
  b.Pred("P", "dept = \"Sales\"", {"Emp"});
  // w0(x0) c0 w1(x1) c1 w2(x2) r3(P: x2, y0) w2(y2) c2 c3
  b.W(0, "x", Row{{"dept", Value("Sales")}});
  b.W(0, "y", Row{{"dept", Value("Legal")}});
  b.Commit(0);
  b.W(1, "x", Row{{"dept", Value("Legal")}});  // moves x out of Sales
  b.Commit(1);
  b.W(2, "x", Row{{"dept", Value("Legal")}, {"phone", Value(42)}});
  b.PredR(3, "P", {"x@2", "y@0"});
  b.W(2, "y", Row{{"dept", Value("Legal")}, {"phone", Value(7)}});
  b.Commit(2).Commit(3);
  b.VersionOrder("x", {0, 1, 2});
  b.VersionOrder("y", {0, 2});
  return PaperHistory{
      "H_pred_read", "§4.4.1",
      "T3's version set contains x2, but the predicate-read-dependency edge "
      "comes from T1 — the latest transaction that changed the matches — "
      "because T2's phone update is irrelevant to Dept=Sales. Serializable "
      "in the order T0, T1, T3, T2.",
      Build(b)};
}

PaperHistory MakeHInsert() {
  HistoryBuilder b;
  b.Relation("Emp").Relation("Bonus");
  b.Object("x", "Emp").Object("z", "Emp").Object("y", "Bonus");
  // comm > 0.25 * sal, with the product precomputed as quarter_sal (the
  // expression language is deliberately arithmetic-free).
  b.Pred("P", "comm > quarter_sal", {"Emp"});
  b.W(0, "x", Row{{"comm", Value(30)}, {"quarter_sal", Value(25)}});
  b.W(0, "z", Row{{"comm", Value(10)}, {"quarter_sal", Value(25)}});
  b.Commit(0);
  // r1(comm > 0.25*sal: x0, z0) r1(x0) w1(y1) c1
  b.PredR(1, "P", {"x@0", "z@0"});
  b.R(1, "x", 0);
  b.W(1, "y", Row{{"name", Value("x")}, {"comm", Value(30)}});
  b.Commit(1);
  return PaperHistory{
      "H_insert", "§4.3.2",
      "INSERT INTO BONUS SELECT … FROM EMP WHERE COMM > 0.25*SAL: x0 "
      "matches the predicate, is read, and generates the inserted tuple y1.",
      Build(b)};
}

PaperHistory MakeHSerial() {
  HistoryBuilder b;
  // w1(z1) w1(x1) w1(y1) w3(x3) c1 r2(x1) w2(y2) c2 r3(y2) w3(z3) c3
  b.W(1, "z", 1).W(1, "x", 1).W(1, "y", 1);
  b.W(3, "x", 3);
  b.Commit(1);
  b.R(2, "x", 1).W(2, "y", 2).Commit(2);
  b.R(3, "y", 2).W(3, "z", 3).Commit(3);
  b.VersionOrder("x", {1, 3});
  b.VersionOrder("y", {1, 2});
  b.VersionOrder("z", {1, 3});
  return PaperHistory{
      "H_serial", "§4.4.4 (Figure 3)",
      "DSG has edges T1→T2 (ww, wr), T1→T3 (ww), T2→T3 (wr, rw); "
      "serializable in the order T1, T2, T3.",
      Build(b)};
}

PaperHistory MakeHWcycle() {
  HistoryBuilder b;
  // w1(x1,2) w2(x2,5) w2(y2,5) c2 w1(y1,8) c1   [x1 << x2, y2 << y1]
  b.W(1, "x", 2).W(2, "x", 5).W(2, "y", 5).Commit(2).W(1, "y", 8).Commit(1);
  b.VersionOrder("x", {1, 2});
  b.VersionOrder("y", {2, 1});
  return PaperHistory{
      "H_wcycle", "§5.1 (Figure 4)",
      "The updates of x and y occur in opposite orders: a pure "
      "write-dependency cycle (G0). Disallowed even at PL-1.",
      Build(b)};
}

PaperHistory MakeHPredUpdate() {
  HistoryBuilder b;
  b.Relation("Emp");
  b.Object("x", "Emp").Object("y", "Emp");
  b.Pred("P", "dept = \"Sales\"", {"Emp"});
  // w1(x1) r2(Dept=Sales: x1, yinit) w1(y1) w2(x2) c1 c2
  b.W(1, "x", Row{{"dept", Value("Sales")}, {"sal", Value(10)}});
  b.PredR(2, "P", {"x@1", "y@init"});
  b.W(1, "y", Row{{"dept", Value("Sales")}, {"sal", Value(10)}});
  b.W(2, "x", Row{{"dept", Value("Sales")}, {"sal", Value(20)}});
  b.Commit(1).Commit(2);
  b.VersionOrder("x", {1, 2});
  b.VersionOrder("y", {1});
  return PaperHistory{
      "H_pred_update", "§5.1",
      "T1 adds employees x and y to Sales while T2 raises all Sales "
      "salaries; x is raised but y is not. Allowed at PL-1 (no "
      "write-dependency cycle): PL-1 gives weak guarantees to "
      "predicate-based updates.",
      Build(b)};
}

PaperHistory MakeHPhantom() {
  HistoryBuilder b;
  b.Relation("Emp").Relation("Agg");
  b.Object("x", "Emp").Object("y", "Emp").Object("z", "Emp");
  b.Object("Sum", "Agg");
  b.Pred("P", "dept = \"Sales\"", {"Emp"});
  b.W(0, "x", Row{{"dept", Value("Sales")}, {"sal", Value(10)}});
  b.W(0, "y", Row{{"dept", Value("Sales")}, {"sal", Value(10)}});
  b.W(0, "Sum", 20);
  b.Commit(0);
  // r1(Dept=Sales: x0, y0) r1(x0) r1(y0)
  b.PredR(1, "P", {"x@0", "y@0"});
  b.R(1, "x", 0).R(1, "y", 0);
  // r2(Sum0, 20) w2(z2, 10) w2(Sum2, 30) c2
  b.R(2, "Sum", 0);
  b.W(2, "z", Row{{"dept", Value("Sales")}, {"sal", Value(10)}});
  b.W(2, "Sum", 30);
  b.Commit(2);
  // r1(Sum2, 30) c1 — T1 sees the new sum but only two employees.
  b.R(1, "Sum", 2).Commit(1);
  return PaperHistory{
      "H_phantom", "§5.4 (Figure 5)",
      "T2 inserts a phantom employee z and updates the sum-of-salaries "
      "between T1's predicate read and its check: the DSG cycle is "
      "T1 --rw(pred)--> T2 --wr--> T1. Ruled out by PL-3, permitted by "
      "PL-2.99 (the only anti-dependency in the cycle is predicate-based).",
      Build(b)};
}

std::vector<PaperHistory> AllPaperHistories() {
  std::vector<PaperHistory> out;
  out.push_back(MakeH1());
  out.push_back(MakeH2());
  out.push_back(MakeH1Prime());
  out.push_back(MakeH2Prime());
  out.push_back(MakeHWriteOrder());
  out.push_back(MakeHPredRead());
  out.push_back(MakeHInsert());
  out.push_back(MakeHSerial());
  out.push_back(MakeHWcycle());
  out.push_back(MakeHPredUpdate());
  out.push_back(MakeHPhantom());
  return out;
}

}  // namespace adya
