#include "core/minimize.h"

#include <optional>

#include "core/levels.h"

namespace adya {
namespace {

History CloneUniverse(const History& h) {
  History out;
  for (RelationId r = 0; r < h.relation_count(); ++r) {
    out.AddRelation(h.relation_name(r));
  }
  for (ObjectId o = 0; o < h.object_count(); ++o) {
    out.AddObject(h.object_name(o), h.object_relation(o));
  }
  for (PredicateId p = 0; p < h.predicate_count(); ++p) {
    out.AddPredicate(h.predicate_name(p), h.predicate_ptr(p),
                     h.predicate_relations(p));
  }
  return out;
}

/// Rebuilds `h` with a reduction applied:
///   * every event of `removed_txn` dropped (kTxnInit = none), including
///     version-set entries that referenced its writes;
///   * the single event `removed_event` dropped (kNoEvent = none);
///   * the version-set entry (`drop_vset_event`, `drop_vset_index`)
///     dropped (kNoEvent = none).
/// Returns nullopt when the reduced history is no longer well-formed.
std::optional<History> Rebuild(const History& h, TxnId removed_txn,
                               EventId removed_event,
                               EventId drop_vset_event,
                               size_t drop_vset_index) {
  History out = CloneUniverse(h);
  for (TxnId txn : h.Transactions()) {
    if (txn == removed_txn) continue;
    out.SetLevel(txn, h.txn_info(txn).level);
  }
  for (EventId id = h.event_begin(); id < h.event_end(); ++id) {
    if (id == removed_event) continue;
    const Event& e = h.event(id);
    if (removed_txn != kTxnInit && e.txn == removed_txn) continue;
    Event copy = e;
    if (e.type == EventType::kPredicateRead) {
      std::vector<VersionId> vset;
      vset.reserve(e.vset.size());
      for (size_t i = 0; i < e.vset.size(); ++i) {
        if (id == drop_vset_event && i == drop_vset_index) continue;
        if (removed_txn != kTxnInit && e.vset[i].writer == removed_txn) {
          continue;  // the selection degrades to x_init
        }
        vset.push_back(e.vset[i]);
      }
      copy.vset = std::move(vset);
    }
    out.Append(std::move(copy));
  }
  // Version orders: keep the original relative order, minus the removed
  // transaction's slots.
  for (ObjectId obj = 0; obj < h.object_count(); ++obj) {
    std::vector<TxnId> order;
    for (TxnId txn : h.VersionOrder(obj)) {
      if (txn != removed_txn) order.push_back(txn);
    }
    out.SetVersionOrder(obj, std::move(order));
  }
  if (!out.Finalize().ok()) return std::nullopt;
  return out;
}

bool DroppableEvent(const Event& e) {
  return e.type == EventType::kRead || e.type == EventType::kPredicateRead ||
         e.type == EventType::kBegin;
}

}  // namespace

History Minimize(const History& h, const ViolationTest& still_violates) {
  ADYA_CHECK_MSG(h.finalized(), "Minimize requires a finalized history");
  ADYA_CHECK_MSG(still_violates(h),
                 "Minimize requires an initially violating history");
  History current = h;
  bool progress = true;
  while (progress) {
    progress = false;
    // 1. Whole transactions — the big wins first.
    for (TxnId txn : current.Transactions()) {
      auto candidate = Rebuild(current, txn, kNoEvent, kNoEvent, 0);
      if (candidate.has_value() && still_violates(*candidate)) {
        current = std::move(*candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    // 2. Individual reads / predicate reads / begin markers.
    for (EventId id = current.event_begin(); id < current.event_end();
         ++id) {
      if (!DroppableEvent(current.event(id))) continue;
      auto candidate = Rebuild(current, kTxnInit, id, kNoEvent, 0);
      if (candidate.has_value() && still_violates(*candidate)) {
        current = std::move(*candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    // 3. Single version-set entries.
    for (EventId id = current.event_begin();
         id < current.event_end() && !progress; ++id) {
      const Event& e = current.event(id);
      if (e.type != EventType::kPredicateRead) continue;
      for (size_t i = 0; i < e.vset.size(); ++i) {
        auto candidate = Rebuild(current, kTxnInit, kNoEvent, id, i);
        if (candidate.has_value() && still_violates(*candidate)) {
          current = std::move(*candidate);
          progress = true;
          break;
        }
      }
    }
  }
  return current;
}

History MinimizeForPhenomenon(const History& h, Phenomenon phenomenon) {
  return Minimize(h, [phenomenon](const History& candidate) {
    return PhenomenaChecker(candidate).Check(phenomenon).has_value();
  });
}

History MinimizeForLevelViolation(const History& h, IsolationLevel level) {
  return Minimize(h, [level](const History& candidate) {
    return !CheckLevel(candidate, level).satisfied;
  });
}

}  // namespace adya
