#include "core/phenomena.h"

#include <set>

#include "common/flat_hash.h"
#include "common/str_util.h"
#include "history/format.h"
#include "obs/stats.h"

namespace adya {

std::string_view PhenomenonName(Phenomenon p) {
  switch (p) {
    case Phenomenon::kG0:
      return "G0";
    case Phenomenon::kG1a:
      return "G1a";
    case Phenomenon::kG1b:
      return "G1b";
    case Phenomenon::kG1c:
      return "G1c";
    case Phenomenon::kG2Item:
      return "G2-item";
    case Phenomenon::kG2:
      return "G2";
    case Phenomenon::kGSingle:
      return "G-single";
    case Phenomenon::kGSIa:
      return "G-SI(a)";
    case Phenomenon::kGSIb:
      return "G-SI(b)";
    case Phenomenon::kGCursor:
      return "G-cursor";
  }
  return "?";
}

namespace {

bool AcceptAll(TxnId) { return true; }

}  // namespace

PhenomenaChecker::PhenomenaChecker(const History& h,
                                   const ConflictOptions& options)
    : history_(&h), options_(options) {
  options_.include_start_edges = false;
  dsg_ = std::make_unique<Dsg>(h, options_);
}

const Dsg& PhenomenaChecker::ssg() const {
  if (ssg_ == nullptr) {
    ConflictOptions options = options_;
    options.include_start_edges = true;
    ssg_ = std::make_unique<Dsg>(*history_, options);
  }
  return *ssg_;
}

std::optional<Violation> PhenomenaChecker::Check(Phenomenon p) const {
  ADYA_TIMED_PHASE(options_.stats, "checker.phenomenon_us");
  switch (p) {
    case Phenomenon::kG0:
      return CheckG0();
    case Phenomenon::kG1a:
      return CheckG1a(AcceptAll);
    case Phenomenon::kG1b:
      return CheckG1b(AcceptAll);
    case Phenomenon::kG1c:
      return CheckG1c();
    case Phenomenon::kG2Item:
      return CheckG2Item();
    case Phenomenon::kG2:
      return CheckG2();
    case Phenomenon::kGSingle:
      return CheckGSingle();
    case Phenomenon::kGSIa:
      return CheckGSIa();
    case Phenomenon::kGSIb:
      return CheckGSIb();
    case Phenomenon::kGCursor:
      return CheckGCursor();
  }
  ADYA_UNREACHABLE();
}

std::vector<Violation> PhenomenaChecker::CheckAll() const {
  std::vector<Violation> out;
  for (Phenomenon p :
       {Phenomenon::kG0, Phenomenon::kG1a, Phenomenon::kG1b, Phenomenon::kG1c,
        Phenomenon::kG2Item, Phenomenon::kG2, Phenomenon::kGSingle,
        Phenomenon::kGSIa, Phenomenon::kGSIb, Phenomenon::kGCursor}) {
    if (auto v = Check(p)) out.push_back(std::move(*v));
  }
  return out;
}

std::optional<Violation> PhenomenaChecker::CycleViolation(
    Phenomenon p, const Dsg& dsg, graph::KindMask allowed,
    graph::KindMask required) const {
  std::optional<graph::Cycle> cycle;
  {
    ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
    cycle = graph::FindCycleWithRequiredKind(dsg.graph(), allowed, required);
  }
  if (!cycle.has_value()) return std::nullopt;
  ADYA_TIMED_PHASE(options_.stats, "checker.witness_us");
  Violation v;
  v.phenomenon = p;
  v.cycle = *cycle;
  v.description =
      StrCat(PhenomenonName(p), ": ", dsg.DescribeCycle(*cycle));
  return v;
}

// G0: Write Cycles — a cycle consisting entirely of write-dependency edges.
std::optional<Violation> PhenomenaChecker::CheckG0() const {
  return CycleViolation(Phenomenon::kG0, *dsg_, Bit(DepKind::kWW),
                        Bit(DepKind::kWW));
}

// G1a: Aborted Reads — a committed transaction read a version (directly or
// in a predicate read's version set) produced by an aborted transaction.
std::optional<Violation> PhenomenaChecker::CheckG1a(
    const TxnFilter& filter) const {
  const History& h = *history_;
  for (EventId id = h.event_begin(); id < h.event_end(); ++id) {
    if (!filter(h.event(id).txn)) continue;
    if (auto v = phenomena_internal::G1aViolationAt(h, id)) return v;
  }
  return std::nullopt;
}

// G1b: Intermediate Reads — a committed transaction read a version of x
// that was not the writer's final modification of x.
std::optional<Violation> PhenomenaChecker::CheckG1b(
    const TxnFilter& filter) const {
  const History& h = *history_;
  for (EventId id = h.event_begin(); id < h.event_end(); ++id) {
    if (!filter(h.event(id).txn)) continue;
    if (auto v = phenomena_internal::G1bViolationAt(h, id)) return v;
  }
  return std::nullopt;
}

// G1c: Circular Information Flow — a cycle of dependency (ww/wr) edges.
std::optional<Violation> PhenomenaChecker::CheckG1c() const {
  return CycleViolation(Phenomenon::kG1c, *dsg_, kDependencyMask,
                        kDependencyMask);
}

// G2-item: a cycle with one or more item-anti-dependency edges. Predicate
// anti-dependency edges are excluded from the cycle search: PL-2.99 is
// "serializability with respect to regular reads, degree 2 for predicate
// reads" (§5.4), so a cycle that needs a predicate anti-dependency edge to
// close is a phantom anomaly and is permitted at this level. (Reading the
// definition as merely "contains an item edge" would reject histories that
// Figure 1's REPEATABLE READ locking — long item locks, short phantom
// locks — actually produces; the engine property tests exhibit one.)
std::optional<Violation> PhenomenaChecker::CheckG2Item() const {
  return CycleViolation(Phenomenon::kG2Item, *dsg_,
                        kDependencyMask | Bit(DepKind::kRWItem),
                        Bit(DepKind::kRWItem));
}

// G2: a cycle with one or more anti-dependency edges of either flavor.
std::optional<Violation> PhenomenaChecker::CheckG2() const {
  return CycleViolation(Phenomenon::kG2, *dsg_, kConflictMask, kAntiMask);
}

// G-single (thesis, PL-2+): a cycle with exactly one anti-dependency edge.
std::optional<Violation> PhenomenaChecker::CheckGSingle() const {
  std::optional<graph::Cycle> cycle;
  {
    ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
    cycle = graph::FindCycleWithExactlyOne(
        dsg_->graph(), kAntiMask, kDependencyMask,
        graph::CycleOptions{options_.cycle_bitset_max_scc});
  }
  if (!cycle.has_value()) return std::nullopt;
  ADYA_TIMED_PHASE(options_.stats, "checker.witness_us");
  Violation v;
  v.phenomenon = Phenomenon::kGSingle;
  v.cycle = *cycle;
  v.description =
      StrCat("G-single: ", dsg_->DescribeCycle(*cycle));
  return v;
}

// G-SI(a) (thesis, PL-SI "interference"): a read- or write-dependency edge
// Ti -> Tj without a corresponding start-dependency edge — i.e. Tj observed
// Ti's effects although Ti did not commit before Tj's snapshot.
std::optional<Violation> PhenomenaChecker::CheckGSIa() const {
  // The start relation is queried directly (c_i before b_j) instead of via
  // materialized SSG start edges: it is exact either way, avoids building
  // the SSG just for this check, and stays correct when the SSG carries
  // only the transitive reduction of the start order (reduced_start_edges).
  const History& h = *history_;
  const Dsg& d = *dsg_;
  for (graph::EdgeId e = 0; e < d.graph().edge_count(); ++e) {
    if (auto v = phenomena_internal::GSIaViolationAt(h, d, e)) return v;
  }
  return std::nullopt;
}

// G-SI(b) (thesis, PL-SI "missed effects"): an SSG cycle with exactly one
// anti-dependency edge (start edges count as dependency-like edges here).
std::optional<Violation> PhenomenaChecker::CheckGSIb() const {
  const Dsg& s = ssg();
  std::optional<graph::Cycle> cycle;
  {
    ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
    cycle = graph::FindCycleWithExactlyOne(
        s.graph(), kAntiMask, kDependencyMask | kStartMask,
        graph::CycleOptions{options_.cycle_bitset_max_scc});
  }
  if (!cycle.has_value()) return std::nullopt;
  ADYA_TIMED_PHASE(options_.stats, "checker.witness_us");
  Violation v;
  v.phenomenon = Phenomenon::kGSIb;
  v.cycle = *cycle;
  v.description = StrCat("G-SI(b): ", s.DescribeCycle(*cycle));
  return v;
}

// G-cursor (thesis, PL-CS): a cycle of write-dependency edges on a single
// object x closed by exactly one item-anti-dependency edge on x. We
// formalize the thesis's "all edges labeled x" by building one labeled
// subgraph per object.
std::optional<Violation> PhenomenaChecker::CheckGCursor() const {
  const History& h = *history_;
  if (!cursor_built_) {
    cursor_deps_ = ComputeDependencies(h, options_);
    cursor_plan_ = phenomena_internal::BuildCursorPlan(h, cursor_deps_);
    cursor_built_ = true;
  }
  ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
  graph::CycleOptions cycle_options{options_.cycle_bitset_max_scc};
  for (ObjectId obj = 0; obj < h.object_count(); ++obj) {
    if (auto v = phenomena_internal::GCursorViolationAt(
            h, cursor_deps_, cursor_plan_, obj, cycle_options)) {
      return v;
    }
  }
  return std::nullopt;
}

namespace phenomena_internal {

std::optional<Violation> G1aViolationAt(const History& h, EventId id) {
  const Event& e = h.event(id);
  if (!h.IsCommitted(e.txn)) return std::nullopt;
  auto flag = [&](const VersionId& v) -> std::optional<Violation> {
    if (v.is_init() || !h.IsAborted(v.writer)) return std::nullopt;
    Violation viol;
    viol.phenomenon = Phenomenon::kG1a;
    viol.events = {id};
    viol.description =
        StrCat("G1a: committed T", e.txn, " read ", FormatVersion(h, v),
               " written by aborted T", v.writer);
    return viol;
  };
  if (e.type == EventType::kRead) {
    if (auto v = flag(e.version)) return v;
  } else if (e.type == EventType::kPredicateRead) {
    for (const VersionId& vs : e.vset) {
      if (auto v = flag(vs)) return v;
    }
  }
  return std::nullopt;
}

std::optional<Violation> G1bViolationAt(const History& h, EventId id) {
  const Event& e = h.event(id);
  if (!h.IsCommitted(e.txn)) return std::nullopt;
  auto flag = [&](const VersionId& v) -> std::optional<Violation> {
    // A transaction's reads of its own object always observe its latest
    // write so far (§4.2); intermediate reads concern other writers.
    if (v.is_init() || v.writer == e.txn) return std::nullopt;
    uint32_t final_seq = h.FinalSeq(v.writer, v.object);
    if (v.seq == final_seq) return std::nullopt;
    Violation viol;
    viol.phenomenon = Phenomenon::kG1b;
    viol.events = {id};
    viol.description = StrCat(
        "G1b: committed T", e.txn, " read intermediate version ",
        FormatVersion(h, v), " (T", v.writer, "'s final modification of ",
        h.object_name(v.object), " is #", final_seq, ")");
    return viol;
  };
  if (e.type == EventType::kRead) {
    if (auto v = flag(e.version)) return v;
  } else if (e.type == EventType::kPredicateRead) {
    for (const VersionId& vs : e.vset) {
      if (auto v = flag(vs)) return v;
    }
  }
  return std::nullopt;
}

std::optional<Violation> GSIaViolationAt(const History& h, const Dsg& d,
                                         graph::EdgeId e) {
  DepKind kind = d.kind_of(e);
  if ((Bit(kind) & kDependencyMask) == 0) return std::nullopt;
  const auto& edge = d.graph().edge(e);
  // DSG NodeIds are dense committed indices, so the begin/commit anchors
  // are two array reads per edge instead of txn_info tree walks.
  if (h.dense().committed_commit_event(edge.from) <
      h.dense().committed_begin_event(edge.to)) {
    return std::nullopt;
  }
  TxnId from = d.txn_of(edge.from);
  TxnId to = d.txn_of(edge.to);
  Violation v;
  v.phenomenon = Phenomenon::kGSIa;
  v.description = StrCat("G-SI(a): ", d.DescribeEdge(e), "\n  but T", from,
                         " did not commit before T", to, " started");
  return v;
}

CursorPlan BuildCursorPlan(const History& h,
                           const std::vector<Dependency>& deps) {
  CursorPlan plan;
  plan.offsets.assign(h.object_count() + 1, 0);
  auto cursor_kind = [](const Dependency& dep) {
    return dep.kind == DepKind::kWW || dep.kind == DepKind::kRWItem;
  };
  for (const Dependency& dep : deps) {
    if (cursor_kind(dep)) ++plan.offsets[dep.object + 1];
  }
  for (size_t o = 0; o < h.object_count(); ++o) {
    plan.offsets[o + 1] += plan.offsets[o];
  }
  plan.dep_index.resize(plan.offsets.back());
  std::vector<uint32_t> cursor(plan.offsets.begin(), plan.offsets.end() - 1);
  // Ascending fill keeps each bucket in emission order, so the per-object
  // mini-graph below gets the same node/edge numbering as the full-list
  // scan it replaces — witnesses are unchanged.
  for (uint32_t i = 0; i < deps.size(); ++i) {
    if (cursor_kind(deps[i])) plan.dep_index[cursor[deps[i].object]++] = i;
  }
  return plan;
}

std::optional<Violation> GCursorViolationAt(
    const History& h, const std::vector<Dependency>& deps,
    const CursorPlan& plan, ObjectId obj,
    const graph::CycleOptions& cycle_options) {
  // Mini-graph over committed transactions, edges labeled obj. Nodes are
  // numbered in first-appearance order over the object's bucket.
  FlatMap<TxnId, graph::NodeId> nodes;
  graph::Digraph g;
  std::vector<const Dependency*> edge_deps;
  for (uint32_t di = plan.offsets[obj]; di < plan.offsets[obj + 1]; ++di) {
    const Dependency& dep = deps[plan.dep_index[di]];
    graph::NodeId ends[2];
    TxnId txns[2] = {dep.from, dep.to};
    for (int i = 0; i < 2; ++i) {
      auto [slot, inserted] = nodes.try_emplace(txns[i]);
      if (inserted) *slot = g.AddNode();
      ends[i] = *slot;
    }
    g.AddEdge(ends[0], ends[1], Bit(dep.kind));
    edge_deps.push_back(&dep);
  }
  auto cycle = graph::FindCycleWithExactlyOne(g, Bit(DepKind::kRWItem),
                                              Bit(DepKind::kWW), cycle_options);
  if (!cycle.has_value()) return std::nullopt;
  Violation v;
  v.phenomenon = Phenomenon::kGCursor;
  std::vector<std::string> lines;
  for (graph::EdgeId e : cycle->edges) {
    lines.push_back(edge_deps[e]->Describe(h));
  }
  v.description = StrCat("G-cursor on ", h.object_name(obj), ":\n  ",
                         StrJoin(lines, "\n  "));
  return v;
}

}  // namespace phenomena_internal

}  // namespace adya
