#include "core/phenomena.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <iterator>
#include <limits>
#include <set>

#include "common/flat_hash.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "history/format.h"
#include "obs/stats.h"

namespace adya {

std::string_view PhenomenonName(Phenomenon p) {
  switch (p) {
    case Phenomenon::kG0:
      return "G0";
    case Phenomenon::kG1a:
      return "G1a";
    case Phenomenon::kG1b:
      return "G1b";
    case Phenomenon::kG1c:
      return "G1c";
    case Phenomenon::kG2Item:
      return "G2-item";
    case Phenomenon::kG2:
      return "G2";
    case Phenomenon::kGSingle:
      return "G-single";
    case Phenomenon::kGSIa:
      return "G-SI(a)";
    case Phenomenon::kGSIb:
      return "G-SI(b)";
    case Phenomenon::kGCursor:
      return "G-cursor";
  }
  return "?";
}

namespace {

bool AcceptAll(TxnId) { return true; }

/// SCC partition of the start-ordered graph — the DSG's conflict edges plus
/// every start edge (u, j) with c_u < b_j — without materializing a single
/// start edge. The start order is dense even after transitive reduction
/// (tens of millions of pairs at 100k txns for concurrent workloads), so
/// any materialization loses; instead this runs Kosaraju with the start
/// edges enumerated implicitly. A neighbor that is already visited
/// contributes nothing to a DFS forest, so each pass erases nodes from a
/// skip-pointer structure (path halving over the begin- or commit-sorted
/// order) as it visits them, and "next unvisited start target" costs
/// amortized near-constant time: pass 1 scans the begin-suffix past c_u,
/// pass 2 (transpose) the commit-prefix before b_j. Component ids follow
/// Kosaraju's discovery order — a relabeling of Tarjan's; every consumer
/// keys on equality, size, or bucketing, all invariant under relabeling.
graph::SccResult StartOrderScc(const graph::Digraph& g,
                               const DenseTxnIndex& dense) {
  const uint32_t n = static_cast<uint32_t>(g.node_count());
  graph::SccResult scc;
  if (n == 0) return scc;

  std::vector<uint32_t> by_begin(n), by_commit(n);
  for (uint32_t v = 0; v < n; ++v) by_begin[v] = by_commit[v] = v;
  std::sort(by_begin.begin(), by_begin.end(), [&](uint32_t a, uint32_t b) {
    return dense.committed_begin_event(a) < dense.committed_begin_event(b);
  });
  std::sort(by_commit.begin(), by_commit.end(), [&](uint32_t a, uint32_t b) {
    return dense.committed_commit_event(a) < dense.committed_commit_event(b);
  });
  std::vector<EventId> begins(n), commits(n);
  std::vector<uint32_t> begin_pos(n), commit_pos(n);
  for (uint32_t i = 0; i < n; ++i) {
    begins[i] = dense.committed_begin_event(by_begin[i]);
    commits[i] = dense.committed_commit_event(by_commit[i]);
    begin_pos[by_begin[i]] = i;
    commit_pos[by_commit[i]] = i;
  }
  // lo[u]: first begin position past c_u (u's implicit out-targets are the
  // unvisited suffix from there). hi[u]: count of commit positions before
  // b_u (u's implicit in-sources are the unvisited prefix below it).
  std::vector<uint32_t> lo(n), hi(n);
  for (uint32_t v = 0; v < n; ++v) {
    lo[v] = static_cast<uint32_t>(
        std::upper_bound(begins.begin(), begins.end(),
                         dense.committed_commit_event(v)) -
        begins.begin());
    hi[v] = static_cast<uint32_t>(
        std::lower_bound(commits.begin(), commits.end(),
                         dense.committed_begin_event(v)) -
        commits.begin());
  }

  // up[p] = first live begin-position >= p; down[s] = last live
  // commit-position <= s-1, in coordinates shifted by one so 0 is "none".
  std::vector<uint32_t> up(n + 1), down(n + 1);
  for (uint32_t i = 0; i <= n; ++i) up[i] = down[i] = i;
  auto find_up = [&up](uint32_t p) {
    while (up[p] != p) {
      up[p] = up[up[p]];
      p = up[p];
    }
    return p;
  };
  auto find_down = [&down](uint32_t s) {
    while (down[s] != s) {
      down[s] = down[down[s]];
      s = down[s];
    }
    return s;
  };

  // Pass 1: iterative forward DFS recording finishing order.
  std::vector<bool> visited(n, false);
  std::vector<uint32_t> ecur(n, 0);  // per-node conflict-edge cursor
  std::vector<uint32_t> order, stack;
  order.reserve(n);
  auto visit1 = [&](uint32_t v) {
    visited[v] = true;
    up[begin_pos[v]] = begin_pos[v] + 1;
    stack.push_back(v);
  };
  for (uint32_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visit1(root);
    while (!stack.empty()) {
      uint32_t u = stack.back();
      bool advanced = false;
      graph::EdgeSpan out = g.out_edges(u);
      while (ecur[u] < out.size()) {
        uint32_t v = g.edge(out[ecur[u]++]).to;
        if (!visited[v]) {
          visit1(v);
          advanced = true;
          break;
        }
      }
      if (advanced) continue;
      uint32_t p = find_up(lo[u]);
      if (p < n) {
        visit1(by_begin[p]);
        continue;
      }
      order.push_back(u);
      stack.pop_back();
    }
  }

  // Pass 2: transpose DFS in reverse finishing order; each tree is one SCC.
  constexpr uint32_t kUnassigned = std::numeric_limits<uint32_t>::max();
  scc.component.assign(n, kUnassigned);
  std::fill(ecur.begin(), ecur.end(), 0);
  auto visit2 = [&](uint32_t v, uint32_t c) {
    scc.component[v] = c;
    down[commit_pos[v] + 1] = commit_pos[v];
    stack.push_back(v);
  };
  for (uint32_t i = n; i-- > 0;) {
    uint32_t root = order[i];
    if (scc.component[root] != kUnassigned) continue;
    uint32_t c = scc.count++;
    visit2(root, c);
    while (!stack.empty()) {
      uint32_t u = stack.back();
      bool advanced = false;
      graph::EdgeSpan in = g.in_edges(u);
      while (ecur[u] < in.size()) {
        uint32_t v = g.edge(in[ecur[u]++]).from;
        if (scc.component[v] == kUnassigned) {
          visit2(v, c);
          advanced = true;
          break;
        }
      }
      if (advanced) continue;
      uint32_t s = find_down(hi[u]);
      if (s > 0) {
        visit2(by_commit[s - 1], c);
        continue;
      }
      stack.pop_back();
    }
  }
  return scc;
}

/// Below this many committed transactions the serial implicit-Kosaraju
/// StartOrderScc wins; the threshold is low so the mid-size differential
/// corpora exercise the parallel path.
constexpr uint32_t kParallelStartSccMinNodes = 256;

/// Parallel variant of StartOrderScc. The dense start order is made
/// traversable without materializing its O(n²) edges by adding n auxiliary
/// *chain* nodes over the begin-sorted order: chain node C_k (k-th smallest
/// begin) has edges C_k -> by_begin[k] and C_k -> C_{k+1}, and each real
/// node u has one edge u -> C_{lo[u]} where lo[u] is the first begin
/// position past c_u. A real-to-real path through the chain
/// u -> C_a -> … -> C_b -> j exists iff b >= a = lo[u], i.e. iff c_u < b_j
/// — exactly the implicit start edges — so reachability restricted to real
/// nodes (and therefore their SCC partition, SCCs being reachability
/// classes) equals StartOrderScc's. The augmented graph (2n nodes,
/// E + <3n edges) goes through the parallel CSR build and the parallel
/// FW-BW SCC decomposition; real-node components are then projected out
/// and re-densified in first-appearance order. Labels may differ from the
/// serial Kosaraju's — every consumer keys on component equality, which is
/// partition-invariant (DESIGN.md §15) — but are themselves deterministic
/// at any thread count.
graph::SccResult StartOrderSccParallel(const graph::Digraph& g,
                                       const DenseTxnIndex& dense,
                                       ThreadPool* pool) {
  const uint32_t n = static_cast<uint32_t>(g.node_count());
  std::vector<uint32_t> by_begin(n);
  for (uint32_t v = 0; v < n; ++v) by_begin[v] = v;
  std::sort(by_begin.begin(), by_begin.end(), [&](uint32_t a, uint32_t b) {
    return dense.committed_begin_event(a) < dense.committed_begin_event(b);
  });
  std::vector<EventId> begins(n);
  for (uint32_t i = 0; i < n; ++i) {
    begins[i] = dense.committed_begin_event(by_begin[i]);
  }

  const uint32_t chain = n;  // chain node k lives at id chain + k
  std::vector<graph::Digraph::Edge> edges(g.edges());
  edges.reserve(edges.size() + 3u * static_cast<size_t>(n));
  constexpr graph::KindMask kAux = 1;  // any bit: the SCC mask below is ~0
  for (uint32_t k = 0; k < n; ++k) {
    edges.push_back({chain + k, by_begin[k], kAux});
    if (k + 1 < n) edges.push_back({chain + k, chain + k + 1, kAux});
  }
  for (uint32_t u = 0; u < n; ++u) {
    uint32_t lo = static_cast<uint32_t>(
        std::upper_bound(begins.begin(), begins.end(),
                         dense.committed_commit_event(u)) -
        begins.begin());
    if (lo < n) edges.push_back({u, chain + lo, kAux});
  }
  graph::Digraph aug =
      graph::Digraph::FromEdges(2u * static_cast<size_t>(n), std::move(edges),
                                pool);
  graph::SccOptions aug_options;
  aug_options.parallel_min_nodes = 0;  // the caller already gated on size
  graph::SccResult full = graph::StronglyConnectedComponents(
      aug, ~graph::KindMask{0}, pool, aug_options);

  graph::SccResult scc;
  scc.component.assign(n, 0);
  constexpr uint32_t kUnmapped = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> remap(full.count, kUnmapped);
  for (uint32_t v = 0; v < n; ++v) {
    uint32_t& m = remap[full.component[v]];
    if (m == kUnmapped) m = scc.count++;
    scc.component[v] = m;
  }
  return scc;
}

}  // namespace

PhenomenonArtifacts::PhenomenonArtifacts(const History& h,
                                         const ConflictOptions& options,
                                         ThreadPool* pool)
    : history_(&h), options_(options), pool_(pool) {
  options_.include_start_edges = false;
  deps_ = ComputeDependencies(h, options_, pool);
  // The Dsg constructor consumes its list, so hand it a copy: `deps_` also
  // feeds the G-cursor plan and the reduced SSG. The merge + CSR build is
  // super-linear-adjacent work that used to hide in the unaccounted wall
  // residual; it is timed (DESIGN.md §9) and sharded over the pool.
  ADYA_TIMED_PHASE(options_.stats, "checker.dsg_build_us");
  dsg_ = std::make_unique<Dsg>(h, deps_, pool_);
}

const Dsg& PhenomenonArtifacts::reduced_ssg() const {
  std::call_once(reduced_ssg_once_, [&] {
    ADYA_TIMED_PHASE(options_.stats, "checker.phenomenon.ssg_build_us");
    // Conflicts are already in hand; only the start phase runs here. The
    // concatenation reproduces ComputeDependencies with include_start_edges
    // + reduced_start_edges byte for byte (start conflicts are emitted
    // after every conflict phase), so the merged graph — edge ids included
    // — matches a Dsg built from scratch under those options.
    std::vector<Dependency> all = deps_;
    std::vector<Dependency> starts =
        ComputeStartDependencies(*history_, /*reduced=*/true);
    all.insert(all.end(), std::make_move_iterator(starts.begin()),
               std::make_move_iterator(starts.end()));
    reduced_ssg_ = std::make_unique<Dsg>(*history_, std::move(all), pool_);
  });
  return *reduced_ssg_;
}

const graph::SccResult& PhenomenonArtifacts::ssg_scc() const {
  std::call_once(ssg_scc_once_, [&] {
    ADYA_TIMED_PHASE(options_.stats, "checker.phenomenon.ssg_build_us");
    const uint32_t n = static_cast<uint32_t>(dsg_->graph().node_count());
    if (pool_ != nullptr && pool_->threads() > 1 &&
        n >= kParallelStartSccMinNodes) {
      ssg_scc_ =
          StartOrderSccParallel(dsg_->graph(), history_->dense(), pool_);
    } else {
      ssg_scc_ = StartOrderScc(dsg_->graph(), history_->dense());
    }
  });
  return ssg_scc_;
}

const phenomena_internal::CursorPlan& PhenomenonArtifacts::cursor_plan() const {
  std::call_once(cursor_plan_once_, [&] {
    ADYA_TIMED_PHASE(options_.stats, "checker.phenomenon.cursor_build_us");
    cursor_plan_ = phenomena_internal::BuildCursorPlan(*history_, deps_);
  });
  return cursor_plan_;
}

const graph::SccResult& PhenomenonArtifacts::conflict_scc() const {
  std::call_once(conflict_scc_once_, [&] {
    ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
    conflict_scc_ =
        graph::StronglyConnectedComponents(dsg_->graph(), kConflictMask, pool_);
  });
  return conflict_scc_;
}

std::optional<Violation> PhenomenonArtifacts::Memo(
    Phenomenon p,
    const std::function<std::optional<Violation>()>& compute) const {
  MemoSlot& slot = memo_[static_cast<size_t>(p)];
  std::call_once(slot.once, [&] { slot.result = compute(); });
  return slot.result;
}

std::optional<Violation> PhenomenonArtifacts::CheckGSIb(
    ThreadPool* pool) const {
  const graph::SccResult& scc = ssg_scc();
  if (options_.reduced_start_edges) {
    // Under this option the SSG *is* the reduced graph (the online
    // certifier's configuration): search it and return its cycle. The
    // light partition is the reduced graph's own partition (same edges),
    // relabeled at most — every consumer keys on component equality.
    const Dsg& r = reduced_ssg();
    std::optional<graph::Cycle> cycle;
    {
      ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
      cycle = graph::FindCycleWithExactlyOne(
          r.graph(), kAntiMask, kDependencyMask | kStartMask, scc, pool,
          graph::CycleOptions{options_.cycle_bitset_max_scc});
    }
    if (!cycle.has_value()) return std::nullopt;
    ADYA_TIMED_PHASE(options_.stats, "checker.witness_us");
    Violation v;
    v.phenomenon = Phenomenon::kGSIb;
    v.cycle = *cycle;
    v.description = StrCat("G-SI(b): ", r.DescribeCycle(*cycle));
    return v;
  }
  // Implicit full-SSG search. Candidate pivot (anti) edges are scanned in
  // ascending id — their ids in the materialized SSG equal their DSG ids
  // (conflicts merge first) — and filtered by the shared partition, exactly
  // like FindCycleWithExactlyOne's scan. Per candidate, the BFS answers
  // rest-path existence AND extracts the witness in one pass; existence is
  // a pure predicate, so the first confirmed pivot here is the same edge
  // the full-graph search stops at, and the BFS is the same BFS.
  const graph::Digraph& g = dsg_->graph();
  std::optional<FullSsgWitness> w;
  {
    ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
    std::vector<graph::EdgeId> candidates;
    for (graph::EdgeId eid = 0; eid < g.edge_count(); ++eid) {
      const graph::Digraph::Edge& e = g.edge(eid);
      if ((e.kinds & kAntiMask) == 0) continue;
      if (scc.component[e.from] != scc.component[e.to]) continue;
      candidates.push_back(eid);
    }
    if (pool != nullptr && pool->threads() > 1 && candidates.size() > 1) {
      // Fan the per-candidate witness BFS out. Existence of a rest-path is
      // a pure per-edge predicate, so the LOWEST confirmed candidate is
      // exactly the edge the serial ascending scan stops at — a min-edge-id
      // reduction (DESIGN.md §15). Shard k takes candidates k, k+S, k+2S, …
      // (ascending within each shard), so the shared atomic bound prunes
      // higher-id work as soon as any shard confirms.
      constexpr graph::EdgeId kNone =
          std::numeric_limits<graph::EdgeId>::max();
      std::atomic<graph::EdgeId> best{kNone};
      const size_t shard_count =
          std::min<size_t>(static_cast<size_t>(pool->threads()) * 4,
                           candidates.size());
      std::vector<graph::EdgeId> local_best(shard_count, kNone);
      std::vector<std::optional<FullSsgWitness>> local_w(shard_count);
      pool->ParallelFor(shard_count, [&](size_t s) {
        for (size_t i = s; i < candidates.size(); i += shard_count) {
          graph::EdgeId eid = candidates[i];
          // Ascending within the shard: everything from here is >= eid.
          if (eid >= best.load(std::memory_order_relaxed)) break;
          std::optional<FullSsgWitness> cand = ReconstructFullSsgWitness(eid);
          if (!cand.has_value()) continue;
          local_best[s] = eid;
          local_w[s] = std::move(cand);
          graph::EdgeId cur = best.load(std::memory_order_relaxed);
          while (eid < cur &&
                 !best.compare_exchange_weak(cur, eid,
                                             std::memory_order_relaxed)) {
          }
          break;  // later candidates in this shard are all larger
        }
      });
      graph::EdgeId win = kNone;
      size_t win_shard = 0;
      for (size_t s = 0; s < shard_count; ++s) {
        if (local_best[s] < win) {
          win = local_best[s];
          win_shard = s;
        }
      }
      if (win != kNone) w = std::move(local_w[win_shard]);
    } else {
      for (size_t i = 0; i < candidates.size() && !w.has_value(); ++i) {
        w = ReconstructFullSsgWitness(candidates[i]);
      }
    }
  }
  if (!w.has_value()) return std::nullopt;
  ADYA_TIMED_PHASE(options_.stats, "checker.witness_us");
  Violation v;
  v.phenomenon = Phenomenon::kGSIb;
  v.cycle = std::move(w->cycle);
  v.description = StrCat("G-SI(b): ", w->description);
  return v;
}

std::optional<PhenomenonArtifacts::FullSsgWitness>
PhenomenonArtifacts::ReconstructFullSsgWitness(graph::EdgeId pivot) const {
  // Replays CloseCycle over the fully materialized SSG without building its
  // O(committed²) start edges: the BFS back from the pivot edge's head
  // treats "every unvisited in-component node whose begin follows u's
  // commit" as u's start out-edges. Three facts make the replay exact:
  //  * conflict edges keep their DSG ids in the SSG (conflicts are merged
  //    first), and each node's adjacency lists them before its start edges;
  //  * a node's start edges are inserted in ascending dense-id order of the
  //    target, so processing the implicit targets sorted by dense id
  //    reproduces the queue order (skipped out-of-component or seen targets
  //    are never marked, exactly as ShortestPathInComponent skips them);
  //  * the full-SSG id of start edge (u, j) is recoverable arithmetically:
  //    conflict_edge_count + Σ_{i<u} |{j' : c_i < b_{j'}}| + rank of j
  //    among u's targets — the emission order of the start phase.
  const Dsg& d = *dsg_;
  const graph::Digraph& g = d.graph();
  const DenseTxnIndex& dense = history_->dense();
  const graph::SccResult& scc = ssg_scc();  // partition == full SSG's
  const graph::Digraph::Edge& pe = g.edge(pivot);
  const uint32_t comp = scc.component[pe.from];
  const graph::NodeId n = static_cast<graph::NodeId>(dense.committed_count());
  constexpr graph::EdgeId kNoEdge = std::numeric_limits<graph::EdgeId>::max();

  struct PathEdge {
    graph::NodeId from;
    graph::NodeId to;
    graph::EdgeId dsg_edge;  // kNoEdge for a start edge
  };
  std::vector<PathEdge> path;  // pe.to ⇝ pe.from, in order

  if (pe.from != pe.to) {
    // In-component nodes ordered by begin event; a skip-pointer structure
    // over this order hands each node to the first popped u whose commit
    // precedes its begin, so every node is gathered exactly once.
    std::vector<graph::NodeId> by_begin;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (scc.component[v] == comp) by_begin.push_back(v);
    }
    std::sort(by_begin.begin(), by_begin.end(),
              [&](graph::NodeId a, graph::NodeId b) {
                return dense.committed_begin_event(a) <
                       dense.committed_begin_event(b);
              });
    const uint32_t m = static_cast<uint32_t>(by_begin.size());
    std::vector<EventId> begins(m);
    for (uint32_t i = 0; i < m; ++i) {
      begins[i] = dense.committed_begin_event(by_begin[i]);
    }
    std::vector<uint32_t> next(m + 1);
    for (uint32_t i = 0; i <= m; ++i) next[i] = i;
    auto find = [&next](uint32_t pos) {  // first live position >= pos
      while (next[pos] != pos) {
        next[pos] = next[next[pos]];  // path halving
        pos = next[pos];
      }
      return pos;
    };

    std::vector<bool> seen(n, false);
    std::vector<graph::NodeId> parent_node(n, 0);
    std::vector<graph::EdgeId> parent_edge(n, kNoEdge);
    std::deque<graph::NodeId> queue;
    seen[pe.to] = true;
    queue.push_back(pe.to);
    bool found = false;
    std::vector<graph::NodeId> gathered;
    while (!queue.empty() && !found) {
      graph::NodeId u = queue.front();
      queue.pop_front();
      for (graph::EdgeId eid : g.out_edges(u)) {
        const graph::Digraph::Edge& e = g.edge(eid);
        if ((e.kinds & (kDependencyMask | kStartMask)) == 0 || seen[e.to]) {
          continue;
        }
        if (scc.component[e.to] != comp) continue;
        seen[e.to] = true;
        parent_node[e.to] = u;
        parent_edge[e.to] = eid;
        if (e.to == pe.from) {
          found = true;
          break;
        }
        queue.push_back(e.to);
      }
      if (found) break;
      EventId cu = dense.committed_commit_event(u);
      uint32_t lo = static_cast<uint32_t>(
          std::upper_bound(begins.begin(), begins.end(), cu) - begins.begin());
      gathered.clear();
      for (uint32_t pos = find(lo); pos < m; pos = find(pos + 1)) {
        graph::NodeId j = by_begin[pos];
        next[pos] = pos + 1;  // erased: marked below, or already seen
        if (!seen[j]) gathered.push_back(j);
      }
      std::sort(gathered.begin(), gathered.end());
      for (graph::NodeId j : gathered) {
        seen[j] = true;
        parent_node[j] = u;
        parent_edge[j] = kNoEdge;
        if (j == pe.from) {
          found = true;
          break;
        }
        queue.push_back(j);
      }
    }
    if (!found) return std::nullopt;

    graph::NodeId cur = pe.from;
    while (cur != pe.to) {
      path.push_back({parent_node[cur], cur, parent_edge[cur]});
      cur = parent_node[cur];
    }
    std::reverse(path.begin(), path.end());
  }

  // Synthesized start-edge ids: the start phase emits, per source i in
  // dense order, one edge to every j with c_i < b_j in ascending j order,
  // after all conflict edges (which dedup; start pairs are unique). Only
  // needed when the path actually uses a start edge.
  bool has_start = false;
  for (const PathEdge& e : path) has_start |= e.dsg_edge == kNoEdge;
  std::vector<uint64_t> start_offset;
  std::vector<EventId> sorted_begins;
  if (has_start) {
    sorted_begins.resize(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      sorted_begins[v] = dense.committed_begin_event(v);
    }
    std::sort(sorted_begins.begin(), sorted_begins.end());
    start_offset.assign(static_cast<size_t>(n) + 1, 0);
    for (graph::NodeId u = 0; u < n; ++u) {
      EventId cu = dense.committed_commit_event(u);
      uint64_t cnt = n - (std::upper_bound(sorted_begins.begin(),
                                           sorted_begins.end(), cu) -
                          sorted_begins.begin());
      start_offset[u + 1] = start_offset[u] + cnt;
    }
  }
  auto start_edge_id = [&](graph::NodeId u, graph::NodeId j) {
    EventId cu = dense.committed_commit_event(u);
    uint64_t rank = 0;
    for (graph::NodeId v = 0; v < j; ++v) {
      if (dense.committed_begin_event(v) > cu) ++rank;
    }
    // uint64 arithmetic: at scales where the materialized graph could not
    // exist the synthesized id only needs to be self-consistent.
    return static_cast<graph::EdgeId>(g.edge_count() + start_offset[u] + rank);
  };

  FullSsgWitness out;
  out.cycle.edges.push_back(pivot);
  out.description = StrCat("cycle:\n  ", d.DescribeEdge(pivot));
  for (const PathEdge& e : path) {
    if (e.dsg_edge != kNoEdge) {
      out.cycle.edges.push_back(e.dsg_edge);
      out.description += StrCat("\n  ", d.DescribeEdge(e.dsg_edge));
      continue;
    }
    out.cycle.edges.push_back(start_edge_id(e.from, e.to));
    Dependency dep;
    dep.from = d.txn_of(e.from);
    dep.to = d.txn_of(e.to);
    dep.kind = DepKind::kStart;
    out.description +=
        StrCat("\n  T", dep.from, " --", DepKindName(DepKind::kStart),
               "--> T", dep.to, "\n    ", dep.Describe(*history_));
  }
  return out;
}

PhenomenaChecker::PhenomenaChecker(const History& h,
                                   const ConflictOptions& options)
    : PhenomenaChecker(h, options, nullptr) {}

PhenomenaChecker::PhenomenaChecker(const History& h,
                                   const ConflictOptions& options,
                                   ThreadPool* pool)
    : history_(&h), options_(options), pool_(pool) {
  options_.include_start_edges = false;
  artifacts_ = std::make_unique<PhenomenonArtifacts>(h, options_, pool_);
}

std::optional<Violation> PhenomenaChecker::Check(Phenomenon p) const {
  ADYA_TIMED_PHASE(options_.stats, "checker.phenomenon_us");
  ADYA_TIMED_PHASE(options_.stats,
                   phenomena_internal::PhenomenonMetricName(p));
  return artifacts_->Memo(p, [&] { return CheckDispatch(p); });
}

std::optional<Violation> PhenomenaChecker::CheckDispatch(Phenomenon p) const {
  switch (p) {
    case Phenomenon::kG0:
      return CheckG0();
    case Phenomenon::kG1a:
      return CheckG1a(AcceptAll);
    case Phenomenon::kG1b:
      return CheckG1b(AcceptAll);
    case Phenomenon::kG1c:
      return CheckG1c();
    case Phenomenon::kG2Item:
      return CheckG2Item();
    case Phenomenon::kG2:
      return CheckG2();
    case Phenomenon::kGSingle:
      return CheckGSingle();
    case Phenomenon::kGSIa:
      return CheckGSIa();
    case Phenomenon::kGSIb:
      return CheckGSIb();
    case Phenomenon::kGCursor:
      return CheckGCursor();
  }
  ADYA_UNREACHABLE();
}

std::vector<Violation> PhenomenaChecker::CheckAll() const {
  std::vector<Violation> out;
  for (Phenomenon p :
       {Phenomenon::kG0, Phenomenon::kG1a, Phenomenon::kG1b, Phenomenon::kG1c,
        Phenomenon::kG2Item, Phenomenon::kG2, Phenomenon::kGSingle,
        Phenomenon::kGSIa, Phenomenon::kGSIb, Phenomenon::kGCursor}) {
    if (auto v = Check(p)) out.push_back(std::move(*v));
  }
  return out;
}

std::optional<Violation> PhenomenaChecker::CycleViolation(
    Phenomenon p, const Dsg& dsg, graph::KindMask allowed,
    graph::KindMask required, const graph::SccResult* scc) const {
  std::optional<graph::Cycle> cycle;
  {
    ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
    if (scc != nullptr) {
      cycle = graph::FindCycleWithRequiredKind(dsg.graph(), allowed, required,
                                               *scc, pool_);
    } else if (pool_ != nullptr && pool_->threads() > 1) {
      // No shared partition for this mask: decompose with the parallel
      // SCC (partition-identical to the serial Tarjan's; the search keys
      // on component equality only) and shard the candidate scan.
      graph::SccResult own =
          graph::StronglyConnectedComponents(dsg.graph(), allowed, pool_);
      cycle = graph::FindCycleWithRequiredKind(dsg.graph(), allowed, required,
                                               own, pool_);
    } else {
      cycle =
          graph::FindCycleWithRequiredKind(dsg.graph(), allowed, required);
    }
  }
  if (!cycle.has_value()) return std::nullopt;
  ADYA_TIMED_PHASE(options_.stats, "checker.witness_us");
  Violation v;
  v.phenomenon = p;
  v.cycle = *cycle;
  v.description =
      StrCat(PhenomenonName(p), ": ", dsg.DescribeCycle(*cycle));
  return v;
}

// G0: Write Cycles — a cycle consisting entirely of write-dependency edges.
std::optional<Violation> PhenomenaChecker::CheckG0() const {
  return CycleViolation(Phenomenon::kG0, dsg(), Bit(DepKind::kWW),
                        Bit(DepKind::kWW));
}

// G1a: Aborted Reads — a committed transaction read a version (directly or
// in a predicate read's version set) produced by an aborted transaction.
std::optional<Violation> PhenomenaChecker::CheckG1a(
    const TxnFilter& filter) const {
  ADYA_TIMED_PHASE(options_.stats, "checker.phenomenon.g1a_scan_us");
  const History& h = *history_;
  for (EventId id = h.event_begin(); id < h.event_end(); ++id) {
    if (!filter(h.event(id).txn)) continue;
    if (auto v = phenomena_internal::G1aViolationAt(h, id)) return v;
  }
  return std::nullopt;
}

// G1b: Intermediate Reads — a committed transaction read a version of x
// that was not the writer's final modification of x.
std::optional<Violation> PhenomenaChecker::CheckG1b(
    const TxnFilter& filter) const {
  ADYA_TIMED_PHASE(options_.stats, "checker.phenomenon.g1b_scan_us");
  const History& h = *history_;
  for (EventId id = h.event_begin(); id < h.event_end(); ++id) {
    if (!filter(h.event(id).txn)) continue;
    if (auto v = phenomena_internal::G1bViolationAt(h, id)) return v;
  }
  return std::nullopt;
}

// G1c: Circular Information Flow — a cycle of dependency (ww/wr) edges.
std::optional<Violation> PhenomenaChecker::CheckG1c() const {
  return CycleViolation(Phenomenon::kG1c, dsg(), kDependencyMask,
                        kDependencyMask);
}

// G2-item: a cycle with one or more item-anti-dependency edges. Predicate
// anti-dependency edges are excluded from the cycle search: PL-2.99 is
// "serializability with respect to regular reads, degree 2 for predicate
// reads" (§5.4), so a cycle that needs a predicate anti-dependency edge to
// close is a phantom anomaly and is permitted at this level. (Reading the
// definition as merely "contains an item edge" would reject histories that
// Figure 1's REPEATABLE READ locking — long item locks, short phantom
// locks — actually produces; the engine property tests exhibit one.)
std::optional<Violation> PhenomenaChecker::CheckG2Item() const {
  return CycleViolation(Phenomenon::kG2Item, dsg(),
                        kDependencyMask | Bit(DepKind::kRWItem),
                        Bit(DepKind::kRWItem));
}

// G2: a cycle with one or more anti-dependency edges of either flavor.
// Shares the conflict-mask SCC partition with the G-single search.
std::optional<Violation> PhenomenaChecker::CheckG2() const {
  return CycleViolation(Phenomenon::kG2, dsg(), kConflictMask, kAntiMask,
                        &artifacts_->conflict_scc());
}

// G-single (thesis, PL-2+): a cycle with exactly one anti-dependency edge.
std::optional<Violation> PhenomenaChecker::CheckGSingle() const {
  std::optional<graph::Cycle> cycle;
  {
    ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
    graph::CycleOptions cycle_options{options_.cycle_bitset_max_scc};
    cycle = graph::FindCycleWithExactlyOne(dsg().graph(), kAntiMask,
                                           kDependencyMask,
                                           artifacts_->conflict_scc(), pool_,
                                           cycle_options);
  }
  if (!cycle.has_value()) return std::nullopt;
  ADYA_TIMED_PHASE(options_.stats, "checker.witness_us");
  Violation v;
  v.phenomenon = Phenomenon::kGSingle;
  v.cycle = *cycle;
  v.description =
      StrCat("G-single: ", dsg().DescribeCycle(*cycle));
  return v;
}

// G-SI(a) (thesis, PL-SI "interference"): a read- or write-dependency edge
// Ti -> Tj without a corresponding start-dependency edge — i.e. Tj observed
// Ti's effects although Ti did not commit before Tj's snapshot.
std::optional<Violation> PhenomenaChecker::CheckGSIa() const {
  // The start relation is queried directly (c_i before b_j) instead of via
  // materialized SSG start edges: it is exact either way, avoids building
  // the SSG just for this check, and stays correct when the SSG carries
  // only the transitive reduction of the start order (reduced_start_edges).
  ADYA_TIMED_PHASE(options_.stats, "checker.phenomenon.gsia_scan_us");
  const History& h = *history_;
  const Dsg& d = dsg();
  for (graph::EdgeId e = 0; e < d.graph().edge_count(); ++e) {
    if (auto v = phenomena_internal::GSIaViolationAt(h, d, e)) return v;
  }
  return std::nullopt;
}

// G-SI(b) (thesis, PL-SI "missed effects"): an SSG cycle with exactly one
// anti-dependency edge (start edges count as dependency-like edges here).
std::optional<Violation> PhenomenaChecker::CheckGSIb() const {
  return artifacts_->CheckGSIb(pool_);
}

// G-cursor (thesis, PL-CS): a cycle of write-dependency edges on a single
// object x closed by exactly one item-anti-dependency edge on x. We
// formalize the thesis's "all edges labeled x" by building one labeled
// subgraph per object.
std::optional<Violation> PhenomenaChecker::CheckGCursor() const {
  const History& h = *history_;
  const std::vector<Dependency>* deps = &artifacts_->deps();
  const phenomena_internal::CursorPlan* plan = &artifacts_->cursor_plan();
  ADYA_TIMED_PHASE(options_.stats, "checker.phenomenon.cursor_scan_us");
  ADYA_TIMED_PHASE(options_.stats, "checker.cycle_search_us");
  graph::CycleOptions cycle_options{options_.cycle_bitset_max_scc};
  for (ObjectId obj = 0; obj < h.object_count(); ++obj) {
    if (auto v = phenomena_internal::GCursorViolationAt(h, *deps, *plan, obj,
                                                        cycle_options)) {
      return v;
    }
  }
  return std::nullopt;
}

namespace phenomena_internal {

std::string_view PhenomenonMetricName(Phenomenon p) {
  switch (p) {
    case Phenomenon::kG0:
      return "checker.phenomenon.g0_us";
    case Phenomenon::kG1a:
      return "checker.phenomenon.g1a_us";
    case Phenomenon::kG1b:
      return "checker.phenomenon.g1b_us";
    case Phenomenon::kG1c:
      return "checker.phenomenon.g1c_us";
    case Phenomenon::kG2Item:
      return "checker.phenomenon.g2item_us";
    case Phenomenon::kG2:
      return "checker.phenomenon.g2_us";
    case Phenomenon::kGSingle:
      return "checker.phenomenon.gsingle_us";
    case Phenomenon::kGSIa:
      return "checker.phenomenon.gsia_us";
    case Phenomenon::kGSIb:
      return "checker.phenomenon.gsib_us";
    case Phenomenon::kGCursor:
      return "checker.phenomenon.gcursor_us";
  }
  return "checker.phenomenon.unknown_us";
}

std::optional<Violation> G1aViolationAt(const History& h, EventId id) {
  const Event& e = h.event(id);
  if (!h.IsCommitted(e.txn)) return std::nullopt;
  auto flag = [&](const VersionId& v) -> std::optional<Violation> {
    if (v.is_init() || !h.IsAborted(v.writer)) return std::nullopt;
    Violation viol;
    viol.phenomenon = Phenomenon::kG1a;
    viol.events = {id};
    viol.description =
        StrCat("G1a: committed T", e.txn, " read ", FormatVersion(h, v),
               " written by aborted T", v.writer);
    return viol;
  };
  if (e.type == EventType::kRead) {
    if (auto v = flag(e.version)) return v;
  } else if (e.type == EventType::kPredicateRead) {
    for (const VersionId& vs : e.vset) {
      if (auto v = flag(vs)) return v;
    }
  }
  return std::nullopt;
}

std::optional<Violation> G1bViolationAt(const History& h, EventId id) {
  const Event& e = h.event(id);
  if (!h.IsCommitted(e.txn)) return std::nullopt;
  auto flag = [&](const VersionId& v) -> std::optional<Violation> {
    // A transaction's reads of its own object always observe its latest
    // write so far (§4.2); intermediate reads concern other writers.
    if (v.is_init() || v.writer == e.txn) return std::nullopt;
    uint32_t final_seq = h.FinalSeq(v.writer, v.object);
    if (v.seq == final_seq) return std::nullopt;
    Violation viol;
    viol.phenomenon = Phenomenon::kG1b;
    viol.events = {id};
    viol.description = StrCat(
        "G1b: committed T", e.txn, " read intermediate version ",
        FormatVersion(h, v), " (T", v.writer, "'s final modification of ",
        h.object_name(v.object), " is #", final_seq, ")");
    return viol;
  };
  if (e.type == EventType::kRead) {
    if (auto v = flag(e.version)) return v;
  } else if (e.type == EventType::kPredicateRead) {
    for (const VersionId& vs : e.vset) {
      if (auto v = flag(vs)) return v;
    }
  }
  return std::nullopt;
}

std::optional<Violation> GSIaViolationAt(const History& h, const Dsg& d,
                                         graph::EdgeId e) {
  DepKind kind = d.kind_of(e);
  if ((Bit(kind) & kDependencyMask) == 0) return std::nullopt;
  const auto& edge = d.graph().edge(e);
  // DSG NodeIds are dense committed indices, so the begin/commit anchors
  // are two array reads per edge instead of txn_info tree walks.
  if (h.dense().committed_commit_event(edge.from) <
      h.dense().committed_begin_event(edge.to)) {
    return std::nullopt;
  }
  TxnId from = d.txn_of(edge.from);
  TxnId to = d.txn_of(edge.to);
  Violation v;
  v.phenomenon = Phenomenon::kGSIa;
  v.description = StrCat("G-SI(a): ", d.DescribeEdge(e), "\n  but T", from,
                         " did not commit before T", to, " started");
  return v;
}

CursorPlan BuildCursorPlan(const History& h,
                           const std::vector<Dependency>& deps) {
  CursorPlan plan;
  plan.offsets.assign(h.object_count() + 1, 0);
  auto cursor_kind = [](const Dependency& dep) {
    return dep.kind == DepKind::kWW || dep.kind == DepKind::kRWItem;
  };
  for (const Dependency& dep : deps) {
    if (cursor_kind(dep)) ++plan.offsets[dep.object + 1];
  }
  for (size_t o = 0; o < h.object_count(); ++o) {
    plan.offsets[o + 1] += plan.offsets[o];
  }
  plan.dep_index.resize(plan.offsets.back());
  std::vector<uint32_t> cursor(plan.offsets.begin(), plan.offsets.end() - 1);
  // Ascending fill keeps each bucket in emission order, so the per-object
  // mini-graph below gets the same node/edge numbering as the full-list
  // scan it replaces — witnesses are unchanged.
  for (uint32_t i = 0; i < deps.size(); ++i) {
    if (cursor_kind(deps[i])) plan.dep_index[cursor[deps[i].object]++] = i;
  }
  return plan;
}

std::optional<Violation> GCursorViolationAt(
    const History& h, const std::vector<Dependency>& deps,
    const CursorPlan& plan, ObjectId obj,
    const graph::CycleOptions& cycle_options) {
  // Mini-graph over committed transactions, edges labeled obj. Nodes are
  // numbered in first-appearance order over the object's bucket.
  FlatMap<TxnId, graph::NodeId> nodes;
  graph::Digraph g;
  std::vector<const Dependency*> edge_deps;
  for (uint32_t di = plan.offsets[obj]; di < plan.offsets[obj + 1]; ++di) {
    const Dependency& dep = deps[plan.dep_index[di]];
    graph::NodeId ends[2];
    TxnId txns[2] = {dep.from, dep.to};
    for (int i = 0; i < 2; ++i) {
      auto [slot, inserted] = nodes.try_emplace(txns[i]);
      if (inserted) *slot = g.AddNode();
      ends[i] = *slot;
    }
    g.AddEdge(ends[0], ends[1], Bit(dep.kind));
    edge_deps.push_back(&dep);
  }
  auto cycle = graph::FindCycleWithExactlyOne(g, Bit(DepKind::kRWItem),
                                              Bit(DepKind::kWW), cycle_options);
  if (!cycle.has_value()) return std::nullopt;
  Violation v;
  v.phenomenon = Phenomenon::kGCursor;
  std::vector<std::string> lines;
  for (graph::EdgeId e : cycle->edges) {
    lines.push_back(edge_deps[e]->Describe(h));
  }
  v.description = StrCat("G-cursor on ", h.object_name(obj), ":\n  ",
                         StrJoin(lines, "\n  "));
  return v;
}

}  // namespace phenomena_internal

}  // namespace adya
