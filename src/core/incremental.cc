#include "core/incremental.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/str_util.h"
#include "obs/stats.h"

namespace adya {

IncrementalChecker::IncrementalChecker(IsolationLevel target,
                                       obs::StatsRegistry* stats,
                                       const GcOptions& gc, ThreadPool* pool)
    : target_(target), pool_(pool), gc_(gc) {
  offline_options_.stats = stats;
  // The detectors see the cycle-preserving reduced edge set: every
  // phenomenon decision is unchanged (ConflictOptions documents why) and
  // long streams of overlapping predicate reads / start orders stay linear
  // instead of quadratic. Witnesses never come from these edges. The
  // options are kept: a prefix GC rebuilds the delta with them.
  delta_options_.first_rw_pred_only = true;
  delta_options_.reduced_start_edges = true;
  delta_options_.stats = stats;
  for (Phenomenon p : ProscribedPhenomena(target_)) {
    switch (p) {
      case Phenomenon::kG0:
        ww_graph_.emplace();
        break;
      case Phenomenon::kG1c:
        dep_graph_.emplace();
        break;
      case Phenomenon::kG2Item:
        item_graph_.emplace();
        break;
      case Phenomenon::kG2:
        conflict_graph_.emplace();
        break;
      case Phenomenon::kGSingle:
        gsingle_.emplace(kAntiMask, kDependencyMask);
        break;
      case Phenomenon::kGSIb:
        delta_options_.include_start_edges = true;
        gsib_.emplace(kAntiMask, kDependencyMask | kStartMask);
        break;
      case Phenomenon::kGSIa:
        track_gsia_ = true;
        break;
      case Phenomenon::kGCursor:
        track_gcursor_ = true;
        break;
      case Phenomenon::kG1a:
      case Phenomenon::kG1b:
        break;  // direct bookkeeping, always on
    }
  }
  delta_ = ConflictDelta(delta_options_);
}

IncrementalChecker::IncrementalChecker(const History& finalized)
    : IncrementalChecker(finalized, ConflictOptions()) {}

IncrementalChecker::IncrementalChecker(const History& finalized,
                                       const ConflictOptions& options)
    : IncrementalChecker(finalized, options, nullptr) {}

IncrementalChecker::IncrementalChecker(const History& finalized,
                                       const ConflictOptions& options,
                                       ThreadPool* pool)
    : target_(IsolationLevel::kPL3),
      audit_mode_(true),
      offline_options_(options),
      pool_(pool),
      history_(finalized) {
  ADYA_CHECK_MSG(history_.finalized(),
                 "audit-mode IncrementalChecker requires a finalized history");
}

Result<std::vector<Violation>> IncrementalChecker::Feed(const Event& event) {
  ADYA_CHECK_MSG(!audit_mode_, "Feed on an audit-mode IncrementalChecker");
  EventId id = history_.Append(event);
  const Event& e = history_.event(id);
  // Mirror of the offline prefix validation, one event at a time. The
  // first malformation freezes the stream's fate: every later commit
  // surfaces that same error (exactly what re-validating the growing
  // prefix would report), and no malformed event reaches the delta.
  if (!validate_error_.has_value()) ValidateEvent(e, id);
  if (validate_error_.has_value()) {
    if (e.type == EventType::kCommit) return *validate_error_;
    return std::vector<Violation>();
  }
  if (e.type == EventType::kWrite) ObserveWrite(e);
  std::vector<Dependency> delta_edges = delta_.OnEvent(history_, id);
  for (const Dependency& dep : delta_edges) FeedEdge(dep);
  if (e.type != EventType::kCommit) return std::vector<Violation>();
  if (offline_options_.stats != nullptr) {
    offline_options_.stats->histogram("checker.delta_edges")
        .Record(delta_edges.size());
  }
  if (!delta_.dead_violations().empty()) {
    // The one Finalize() failure a well-formed event stream can build up:
    // report it verbatim, at every commit from the first affected one,
    // without counting the commit as checked — as the naive strategy's
    // prefix Finalize does.
    return Status::InvalidArgument(
        StrCat("version order of ",
               history_.object_name(*delta_.dead_violations().begin()),
               ": the dead version must be the last version"));
  }
  ++commits_checked_;
  // OnCommit before GC, and copy the txn id first: a GC rebuilds history_,
  // invalidating `e`.
  TxnId committed = e.txn;
  std::vector<Violation> fresh = OnCommit(committed);
  if (gc_.enabled && ++commits_since_gc_ >= gc_.watermark_interval) {
    commits_since_gc_ = 0;
    MaybeGc();
  }
  return fresh;
}

void IncrementalChecker::ValidateEvent(const Event& e, EventId id) {
  TxnValidation& ts = vstate_[e.txn];
  auto fail = [&](std::string msg) {
    validate_error_ = Status::InvalidArgument(std::move(msg));
  };
  if (ts.finished) {
    fail(StrCat("event ", id, " of T", e.txn,
                " occurs after the transaction finished"));
    return;
  }
  switch (e.type) {
    case EventType::kBegin:
      if (ts.has_events) {
        fail(StrCat("begin of T", e.txn, " is not its first event"));
        return;
      }
      break;
    case EventType::kWrite: {
      uint32_t& count = ts.write_count[e.version.object];
      if (e.version.seq != count + 1) {
        fail(StrCat("write event ", id, ": version seq ", e.version.seq,
                    " is not consecutive (expected ", count + 1,
                    ") for object ", history_.object_name(e.version.object)));
        return;
      }
      const VersionKind* last = ts.last_kind.find(e.version.object);
      if (last != nullptr && *last == VersionKind::kDead) {
        fail(StrCat("write event ", id, ": T", e.txn,
                    " modifies an object it already deleted"));
        return;
      }
      ++count;
      ts.last_kind[e.version.object] = e.written_kind;
      produced_[e.version] = e.written_kind;
      break;
    }
    case EventType::kRead: {
      if (e.version.is_init()) {
        fail(StrCat("read event ", id, ": only visible versions may be ",
                    "read, not the unborn x_init"));
        return;
      }
      const VersionKind* wit = produced_.find(e.version);
      if (wit == nullptr) {
        if (history_.HasSeed(e.version.object)) {
          // Only the object's last pre-frontier committed version survives
          // a prefix GC; any other collected version — and, conflated with
          // them, a never-produced version of a collected object — is
          // unavailable, the stream analogue of ORA-01555.
          fail(StrCat("read event ", id, ": version ",
                      history_.object_name(e.version.object), "_",
                      e.version.writer, ".", e.version.seq,
                      " was collected by the prefix GC (snapshot too old)"));
        } else {
          fail(StrCat("read event ", id, ": version ",
                      history_.object_name(e.version.object), "_",
                      e.version.writer, ".", e.version.seq,
                      " has not been produced"));
        }
        return;
      }
      if (*wit != VersionKind::kVisible) {
        fail(StrCat("read event ", id, ": only visible versions may be ",
                    "read (version is ", VersionKindName(*wit), ")"));
        return;
      }
      const uint32_t* wc = ts.write_count.find(e.version.object);
      if (wc != nullptr && *wc > 0) {
        VersionId own{e.version.object, e.txn, *wc};
        if (!(e.version == own)) {
          fail(StrCat("read event ", id, ": T", e.txn,
                      " must observe its own latest write of ",
                      history_.object_name(e.version.object)));
          return;
        }
      }
      break;
    }
    case EventType::kPredicateRead: {
      const auto& rels = history_.predicate_relations(e.predicate);
      std::set<ObjectId> seen;
      for (const VersionId& v : e.vset) {
        if (!seen.insert(v.object).second) {
          fail(StrCat("predicate read event ", id, ": version set selects ",
                      "two versions of ", history_.object_name(v.object)));
          return;
        }
        if (std::find(rels.begin(), rels.end(),
                      history_.object_relation(v.object)) == rels.end()) {
          fail(StrCat("predicate read event ", id, ": object ",
                      history_.object_name(v.object),
                      " is not in the predicate's relations"));
          return;
        }
        if (v.is_init()) {
          if (history_.HasSeed(v.object)) {
            // x_init's version-order position lies before the collected
            // installers; no truncated prefix can expose it faithfully.
            fail(StrCat("predicate read event ", id, ": selection of ",
                        history_.object_name(v.object),
                        "_init was collected by the prefix GC (snapshot ",
                        "too old)"));
            return;
          }
          continue;
        }
        if (!produced_.contains(v)) {
          if (history_.HasSeed(v.object)) {
            fail(StrCat("predicate read event ", id, ": version of ",
                        history_.object_name(v.object),
                        " was collected by the prefix GC (snapshot too ",
                        "old)"));
          } else {
            fail(StrCat("predicate read event ", id, ": version of ",
                        history_.object_name(v.object),
                        " has not been produced"));
          }
          return;
        }
      }
      // Objects of the predicate's relations absent from the version set
      // implicitly selected x_init — the same snapshot-too-old exposure as
      // an explicit init entry when the object was seeded.
      for (const auto& entry : history_.seed_writers()) {
        ObjectId obj = entry.first;
        if (seen.count(obj) != 0) continue;
        if (std::find(rels.begin(), rels.end(),
                      history_.object_relation(obj)) == rels.end()) {
          continue;
        }
        fail(StrCat("predicate read event ", id, ": implicit selection of ",
                    history_.object_name(obj),
                    "_init was collected by the prefix GC (snapshot too ",
                    "old)"));
        return;
      }
      break;
    }
    case EventType::kCommit:
    case EventType::kAbort:
      ts.finished = true;
      break;
  }
  if (e.type == EventType::kCommit || e.type == EventType::kAbort) {
    live_txns_.erase(e.txn);
  } else if (!ts.has_events) {
    live_txns_.insert(e.txn);
  }
  ts.has_events = true;
}

void IncrementalChecker::ObserveWrite(const Event& e) {
  // A committed read that observed its writer's then-latest version turns
  // intermediate the moment the writer writes the object again; the next
  // commit's prefix is the first to exhibit the G1b.
  if (g1b_fired_ || g1b_pending_ || g1b_watch_.empty()) return;
  if (g1b_watch_.contains(PackKey(e.txn, e.version.object))) {
    g1b_pending_ = true;
  }
}

graph::NodeId IncrementalChecker::NodeOf(TxnId txn) {
  auto [slot, inserted] = node_of_.try_emplace(txn);
  if (inserted) *slot = static_cast<graph::NodeId>(node_of_.size() - 1);
  return *slot;
}

void IncrementalChecker::FeedEdge(const Dependency& dep) {
  // The delta can re-derive one logical edge from several reads/objects;
  // the graphs need each (from, to, kind) once.
  uint8_t& seen_kinds = seen_edges_[PackKey(dep.from, dep.to)];
  uint8_t kind_bit = static_cast<uint8_t>(1u << static_cast<int>(dep.kind));
  if ((seen_kinds & kind_bit) != 0) return;
  seen_kinds |= kind_bit;
  graph::KindMask bit = Bit(dep.kind);
  if (track_gsia_ && !gsia_fired_ && (bit & kDependencyMask) != 0) {
    // G-SI(a): a dependency edge not backed by the start relation. Both
    // endpoints are committed once the edge exists, so the commit/begin
    // comparison is final at emission time.
    const History::TxnInfo& fi = history_.txn_info(dep.from);
    const History::TxnInfo& ti = history_.txn_info(dep.to);
    if (!(fi.commit_event < ti.begin_event)) gsia_fired_ = true;
  }
  bool wants =
      (ww_graph_ && (bit & Bit(DepKind::kWW)) != 0) ||
      (dep_graph_ && (bit & kDependencyMask) != 0) ||
      (item_graph_ && (bit & (kDependencyMask | Bit(DepKind::kRWItem))) != 0) ||
      (conflict_graph_ && (bit & kConflictMask) != 0) ||
      (gsingle_ && (bit & kConflictMask) != 0) ||
      (gsib_ && (bit & (kConflictMask | kStartMask)) != 0);
  if (!wants) return;
  graph::NodeId from = NodeOf(dep.from);
  graph::NodeId to = NodeOf(dep.to);
  size_t nodes = node_of_.size();
  auto feed = [&](std::optional<graph::DynamicSccDigraph>& g,
                  graph::KindMask mask) {
    if (g.has_value() && (bit & mask) != 0) {
      g->EnsureNodes(nodes);
      g->Insert(from, to, bit);
    }
  };
  feed(ww_graph_, Bit(DepKind::kWW));
  feed(dep_graph_, kDependencyMask);
  feed(item_graph_, kDependencyMask | Bit(DepKind::kRWItem));
  feed(conflict_graph_, kConflictMask);
  if (gsingle_.has_value() && (bit & kConflictMask) != 0) {
    gsingle_->EnsureNodes(nodes);
    gsingle_->Insert(from, to, bit);
  }
  if (gsib_.has_value() && (bit & (kConflictMask | kStartMask)) != 0) {
    gsib_->EnsureNodes(nodes);
    gsib_->Insert(from, to, bit);
  }
}

bool IncrementalChecker::PhenomenonHolds(Phenomenon p) {
  switch (p) {
    case Phenomenon::kG0:
      return ww_graph_->intra_kinds() != 0;
    case Phenomenon::kG1a:
      return g1a_fired_;
    case Phenomenon::kG1b:
      return g1b_fired_;
    case Phenomenon::kG1c:
      return dep_graph_->intra_kinds() != 0;
    case Phenomenon::kG2Item:
      return (item_graph_->intra_kinds() & Bit(DepKind::kRWItem)) != 0;
    case Phenomenon::kG2:
      return (conflict_graph_->intra_kinds() & kAntiMask) != 0;
    case Phenomenon::kGSingle:
      return gsingle_->Check();
    case Phenomenon::kGSIa:
      return gsia_fired_;
    case Phenomenon::kGSIb:
      return gsib_->Check();
    case Phenomenon::kGCursor:
      return gcursor_fired_;
  }
  ADYA_UNREACHABLE();
}

std::vector<Violation> IncrementalChecker::OnCommit(TxnId txn) {
  if (g1b_pending_) g1b_fired_ = true;
  const History::TxnInfo& info = history_.txn_info(txn);
  // G1a / G1b instances appear at the reader's own commit (the completion
  // rule turns its reads of in-flight data into aborted reads right here)
  // or, for G1b, at a watched later write — never from other commits,
  // which only move writers from "treated as aborted" to committed.
  auto observe = [&](const VersionId& v) {
    if (v.is_init()) return;
    if (!history_.IsCommitted(v.writer)) g1a_fired_ = true;
    if (v.writer == txn || g1b_fired_) return;
    if (v.seq != history_.FinalSeq(v.writer, v.object)) {
      g1b_fired_ = true;
    } else {
      const TxnValidation* ts = vstate_.find(v.writer);
      if (ts != nullptr && !ts->finished) {
        g1b_watch_.insert(PackKey(v.writer, v.object));
      }
    }
  };
  for (EventId rid : info.reads) {
    const Event& e = history_.event(rid);
    observe(e.version);
    if (track_gcursor_ && !gcursor_fired_) {
      // G-cursor closed form: the object's ww edges form the chain of its
      // installer order, so a cycle with exactly one rw(item) edge exists
      // iff some read's version sits ≥ 2 positions before the reader's own
      // installation — reader → next installer (rw), then the ww chain
      // back up to the reader.
      std::optional<size_t> p = delta_.OrderIndex(e.version.object,
                                                  e.version.writer);
      std::optional<size_t> q = delta_.OrderIndex(e.version.object, txn);
      if (p.has_value() && q.has_value() && *q >= *p + 2) {
        gcursor_fired_ = true;
      }
    }
  }
  for (EventId pid : info.predicate_reads) {
    for (const VersionId& v : history_.event(pid).vset) observe(v);
  }

  std::vector<Phenomenon> newly;
  for (Phenomenon p : ProscribedPhenomena(target_)) {
    if (reported_.count(p) != 0) continue;
    if (PhenomenonHolds(p)) newly.push_back(p);
  }
  std::vector<Violation> fresh;
  if (newly.empty()) return fresh;
  // Witness extraction: run the offline checker on the finalized prefix —
  // the detectors decided *that* a phenomenon holds; the offline checker
  // says *why*, with the exact witness the naive strategy would emit at
  // this commit. Amortized at most once per phenomenon kind, and every
  // phenomenon extracted here answers from the checker's one shared
  // PhenomenonArtifacts pass (conflicts, DSG, SCC partitions) rather than
  // per-phenomenon rescans of the prefix.
  History prefix = history_;
  {
    History::FinalizeOptions fin;
    fin.stats = offline_options_.stats;  // checker.finalize_us + version_order_us
    fin.pool = pool_;
    Status finalize = prefix.Finalize(fin);
    ADYA_CHECK_MSG(finalize.ok(), finalize.ToString());
  }
  PhenomenaChecker offline(prefix, offline_options_, pool_);
  for (Phenomenon p : newly) {
    std::optional<Violation> v = offline.Check(p);
    ADYA_CHECK_MSG(v.has_value(),
                   "incremental detector fired for "
                       << PhenomenonName(p)
                       << " but the offline checker finds no witness");
    reported_.insert(p);
    fresh.push_back(*std::move(v));
  }
  return fresh;
}

void IncrementalChecker::MaybeGc() {
  // A buffered stream error or a pending dead-version violation keeps
  // replaying state verbatim at each commit; leave the prefix untouched so
  // the messages (which quote collected structure) stay exact.
  if (validate_error_.has_value()) return;
  if (!delta_.dead_violations().empty()) return;
  EventId base = history_.event_begin();
  EventId end = history_.event_end();
  uint64_t min_window = std::max<uint64_t>(gc_.min_window_events, 1);
  if (end - base <= min_window) return;
  EventId frontier = end - static_cast<EventId>(min_window);
  // Fixpoint: each pass lowers the frontier to clear every pin found in
  // the then-retained window; lowering retains more events, which can pin
  // further. Converges almost immediately in practice; a pathological
  // chain just skips this watermark.
  bool stable = false;
  for (int pass = 0; pass < 16 && !stable; ++pass) {
    if (frontier <= base) return;
    EventId pinned = PinFrontier(frontier);
    ADYA_CHECK(pinned <= frontier);
    stable = pinned == frontier;
    frontier = pinned;
  }
  if (!stable || frontier <= base) return;
  RunGc(frontier);
}

EventId IncrementalChecker::PinFrontier(EventId candidate) const {
  EventId pinned = candidate;
  auto pin = [&](EventId e) {
    if (e < pinned) pinned = e;
  };
  // No live transaction's events may be collected: its eventual commit
  // derives conflicts from all of them.
  for (TxnId txn : live_txns_) {
    pin(history_.txn_info(txn).first_event);
  }
  for (EventId id = candidate; id < history_.event_end(); ++id) {
    const Event& e = history_.event(id);
    // Finished straddlers: a retained event whose transaction started
    // before the candidate keeps the whole transaction (its commit-time
    // conflict derivation revisits every one of its events). No-op when
    // the transaction starts inside the window.
    pin(history_.txn_info(e.txn).first_event);
    if (e.type == EventType::kRead) {
      pin(PinVersion(e.version, candidate));
    } else if (e.type == EventType::kPredicateRead) {
      FlatSet<ObjectId> selected;
      for (const VersionId& v : e.vset) {
        selected.insert(v.object);
        pin(v.is_init() ? PinInitSelection(v.object, candidate)
                        : PinVersion(v, candidate));
      }
      // Objects of the predicate's relations absent from the version set
      // implicitly selected x_init.
      const auto& rels = history_.predicate_relations(e.predicate);
      for (ObjectId obj = 0;
           obj < static_cast<ObjectId>(history_.object_count()); ++obj) {
        if (selected.contains(obj)) continue;
        if (std::find(rels.begin(), rels.end(),
                      history_.object_relation(obj)) == rels.end()) {
          continue;
        }
        pin(PinInitSelection(obj, candidate));
      }
    }
  }
  return pinned;
}

EventId IncrementalChecker::PinVersion(const VersionId& v,
                                       EventId frontier) const {
  if (v.is_init()) return frontier;
  const History::TxnInfo& wi = history_.txn_info(v.writer);
  if (wi.first_event >= frontier) return frontier;
  // The version survives collection only as its object's seed: the last
  // committed pre-frontier installation. Anything else — an uncommitted
  // or aborted writer, an intermediate version, a superseded installer —
  // pins the writer's whole transaction into the window.
  bool committed_pre = wi.commit_event != kNoEvent &&
                       wi.commit_event < frontier && wi.abort_event == kNoEvent;
  if (!committed_pre) return wi.first_event;
  if (v.seq != history_.FinalSeq(v.writer, v.object)) return wi.first_event;
  std::optional<size_t> idx = delta_.OrderIndex(v.object, v.writer);
  if (!idx.has_value()) return wi.first_event;
  const std::vector<TxnId>& order = delta_.Order(v.object);
  if (*idx + 1 < order.size() &&
      history_.txn_info(order[*idx + 1]).commit_event < frontier) {
    // A later pre-frontier installer supersedes it as the seed.
    return wi.first_event;
  }
  return frontier;
}

EventId IncrementalChecker::PinInitSelection(ObjectId obj,
                                             EventId frontier) const {
  // Selecting x_init exposes the front of the object's version order; a
  // collected installer would sit between x_init and the seed, shifting
  // the order positions wr-pred/rw-pred derivation compares. Keep the
  // first installer (and via the straddler rule everything after it).
  const std::vector<TxnId>& order = delta_.Order(obj);
  if (order.empty()) return frontier;
  const History::TxnInfo& first = history_.txn_info(order.front());
  if (first.commit_event >= frontier) return frontier;
  return std::min(frontier, first.first_event);
}

void IncrementalChecker::RunGc(EventId frontier) {
  auto t0 = std::chrono::steady_clock::now();
  EventId old_base = history_.event_begin();
  History old = std::move(history_);
  history_ = old.CollectPrefix(frontier);
  // produced_ shrinks to the survivors: the per-object seeds plus every
  // retained write. Collected versions now draw the snapshot-too-old
  // validation error instead of feeding conflicts.
  produced_.clear();
  for (const auto& [obj, txn] : history_.seed_writers()) {
    VersionId v{obj, txn, history_.FinalSeq(txn, obj)};
    const History::SeedVersion* s = history_.seed_version(v);
    ADYA_CHECK(s != nullptr);
    produced_[v] = s->kind;
  }
  for (EventId id = frontier; id < old.event_end(); ++id) {
    const Event& e = old.event(id);
    if (e.type == EventType::kWrite) produced_[e.version] = e.written_kind;
  }
  // Rebuild the delta and detectors over the truncated history: seed
  // phantoms first (registering the surviving versions and the front of
  // each version order), then replay the retained events. The replay goes
  // through OnEvent/FeedEdge only — validation, produced_ and the G1a/G1b
  // bookkeeping already hold their post-prefix state and must not be
  // re-applied.
  delta_ = ConflictDelta(delta_options_);
  seen_edges_.clear();
  node_of_.clear();
  if (ww_graph_.has_value()) ww_graph_.emplace();
  if (dep_graph_.has_value()) dep_graph_.emplace();
  if (item_graph_.has_value()) item_graph_.emplace();
  if (conflict_graph_.has_value()) conflict_graph_.emplace();
  if (gsingle_.has_value()) {
    gsingle_.emplace(kAntiMask, kDependencyMask);
    if (reported_.count(Phenomenon::kGSingle) != 0) gsingle_->MarkFired();
  }
  if (gsib_.has_value()) {
    gsib_.emplace(kAntiMask, kDependencyMask | kStartMask);
    if (reported_.count(Phenomenon::kGSIb) != 0) gsib_->MarkFired();
  }
  for (TxnId txn : history_.SeedTransactions()) {
    delta_.SeedPhantom(history_, txn);
  }
  // Retained events re-enter one at a time — Append then OnEvent — so the
  // delta only ever sees the prefix a live feed would have shown it. A
  // pre-built suffix would leak later events into the replay: a commit
  // replaying at position i would see a writer whose own commit sits at
  // j > i as already committed, and take the committed-lookup path before
  // that writer's install has replayed.
  for (EventId id = frontier; id < old.event_end(); ++id) {
    EventId nid = history_.Append(old.event(id));
    ADYA_CHECK(nid == id);
    std::vector<Dependency> edges = delta_.OnEvent(history_, id);
    for (const Dependency& dep : edges) FeedEdge(dep);
  }
  // MaybeGc skipped when a dead-version violation was pending, and the
  // frontier keeps every non-final read version's writer, so the rebuild
  // can never surface one that the full checker would not.
  ADYA_CHECK_MSG(delta_.dead_violations().empty(),
                 "prefix GC resurrected a dead-version violation");
  audit_.Reset();
  ++gc_runs_;
  gc_freed_events_ += frontier - old_base;
  if (offline_options_.stats != nullptr) {
    obs::StatsRegistry& stats = *offline_options_.stats;
    stats.counter("checker.gc_runs").Add();
    stats.counter("checker.gc_freed_events").Add(frontier - old_base);
    stats.histogram("checker.gc_live_window").Record(history_.events().size());
    auto pause = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    stats.histogram("checker.gc_pause_us").Record(pause.count());
  }
}

const PhenomenaChecker& IncrementalChecker::Offline() const {
  size_t events = history_.events().size();
  if (audit_.checker != nullptr && audit_.events == events) {
    return *audit_.checker;
  }
  if (audit_mode_) {
    audit_.checker = std::make_unique<PhenomenaChecker>(
        history_, offline_options_, pool_);
  } else {
    audit_.prefix = std::make_unique<History>(history_);
    {
      History::FinalizeOptions fin;
      fin.stats = offline_options_.stats;
      fin.pool = pool_;
      Status finalize = audit_.prefix->Finalize(fin);
      ADYA_CHECK_MSG(finalize.ok(), finalize.ToString());
    }
    audit_.checker = std::make_unique<PhenomenaChecker>(
        *audit_.prefix, offline_options_, pool_);
  }
  audit_.events = events;
  return *audit_.checker;
}

std::vector<Violation> IncrementalChecker::CheckAll() const {
  return Offline().CheckAll();
}

LevelCheckResult IncrementalChecker::Check(IsolationLevel level) const {
  return CheckLevel(Offline(), level);
}

std::optional<Violation> IncrementalChecker::CheckPhenomenon(
    Phenomenon p) const {
  return Offline().Check(p);
}

}  // namespace adya
