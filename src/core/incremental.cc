#include "core/incremental.h"

#include <algorithm>
#include <utility>

#include "common/str_util.h"
#include "obs/stats.h"

namespace adya {

IncrementalChecker::IncrementalChecker(IsolationLevel target,
                                       obs::StatsRegistry* stats)
    : target_(target) {
  offline_options_.stats = stats;
  // The detectors see the cycle-preserving reduced edge set: every
  // phenomenon decision is unchanged (ConflictOptions documents why) and
  // long streams of overlapping predicate reads / start orders stay linear
  // instead of quadratic. Witnesses never come from these edges.
  ConflictOptions options;
  options.first_rw_pred_only = true;
  options.reduced_start_edges = true;
  options.stats = stats;
  for (Phenomenon p : ProscribedPhenomena(target_)) {
    switch (p) {
      case Phenomenon::kG0:
        ww_graph_.emplace();
        break;
      case Phenomenon::kG1c:
        dep_graph_.emplace();
        break;
      case Phenomenon::kG2Item:
        item_graph_.emplace();
        break;
      case Phenomenon::kG2:
        conflict_graph_.emplace();
        break;
      case Phenomenon::kGSingle:
        gsingle_.emplace(kAntiMask, kDependencyMask);
        break;
      case Phenomenon::kGSIb:
        options.include_start_edges = true;
        gsib_.emplace(kAntiMask, kDependencyMask | kStartMask);
        break;
      case Phenomenon::kGSIa:
        track_gsia_ = true;
        break;
      case Phenomenon::kGCursor:
        track_gcursor_ = true;
        break;
      case Phenomenon::kG1a:
      case Phenomenon::kG1b:
        break;  // direct bookkeeping, always on
    }
  }
  delta_ = ConflictDelta(options);
}

IncrementalChecker::IncrementalChecker(const History& finalized)
    : IncrementalChecker(finalized, ConflictOptions()) {}

IncrementalChecker::IncrementalChecker(const History& finalized,
                                       const ConflictOptions& options)
    : target_(IsolationLevel::kPL3),
      audit_mode_(true),
      offline_options_(options),
      history_(finalized) {
  ADYA_CHECK_MSG(history_.finalized(),
                 "audit-mode IncrementalChecker requires a finalized history");
}

Result<std::vector<Violation>> IncrementalChecker::Feed(const Event& event) {
  ADYA_CHECK_MSG(!audit_mode_, "Feed on an audit-mode IncrementalChecker");
  EventId id = history_.Append(event);
  const Event& e = history_.events()[id];
  // Mirror of the offline prefix validation, one event at a time. The
  // first malformation freezes the stream's fate: every later commit
  // surfaces that same error (exactly what re-validating the growing
  // prefix would report), and no malformed event reaches the delta.
  if (!validate_error_.has_value()) ValidateEvent(e, id);
  if (validate_error_.has_value()) {
    if (e.type == EventType::kCommit) return *validate_error_;
    return std::vector<Violation>();
  }
  if (e.type == EventType::kWrite) ObserveWrite(e);
  std::vector<Dependency> delta_edges = delta_.OnEvent(history_, id);
  for (const Dependency& dep : delta_edges) FeedEdge(dep);
  if (e.type != EventType::kCommit) return std::vector<Violation>();
  if (offline_options_.stats != nullptr) {
    offline_options_.stats->histogram("checker.delta_edges")
        .Record(delta_edges.size());
  }
  if (!delta_.dead_violations().empty()) {
    // The one Finalize() failure a well-formed event stream can build up:
    // report it verbatim, at every commit from the first affected one,
    // without counting the commit as checked — as the naive strategy's
    // prefix Finalize does.
    return Status::InvalidArgument(
        StrCat("version order of ",
               history_.object_name(*delta_.dead_violations().begin()),
               ": the dead version must be the last version"));
  }
  ++commits_checked_;
  return OnCommit(e.txn);
}

void IncrementalChecker::ValidateEvent(const Event& e, EventId id) {
  TxnValidation& ts = vstate_[e.txn];
  auto fail = [&](std::string msg) {
    validate_error_ = Status::InvalidArgument(std::move(msg));
  };
  if (ts.finished) {
    fail(StrCat("event ", id, " of T", e.txn,
                " occurs after the transaction finished"));
    return;
  }
  switch (e.type) {
    case EventType::kBegin:
      if (ts.has_events) {
        fail(StrCat("begin of T", e.txn, " is not its first event"));
        return;
      }
      break;
    case EventType::kWrite: {
      uint32_t& count = ts.write_count[e.version.object];
      if (e.version.seq != count + 1) {
        fail(StrCat("write event ", id, ": version seq ", e.version.seq,
                    " is not consecutive (expected ", count + 1,
                    ") for object ", history_.object_name(e.version.object)));
        return;
      }
      const VersionKind* last = ts.last_kind.find(e.version.object);
      if (last != nullptr && *last == VersionKind::kDead) {
        fail(StrCat("write event ", id, ": T", e.txn,
                    " modifies an object it already deleted"));
        return;
      }
      ++count;
      ts.last_kind[e.version.object] = e.written_kind;
      produced_[e.version] = e.written_kind;
      break;
    }
    case EventType::kRead: {
      if (e.version.is_init()) {
        fail(StrCat("read event ", id, ": only visible versions may be ",
                    "read, not the unborn x_init"));
        return;
      }
      const VersionKind* wit = produced_.find(e.version);
      if (wit == nullptr) {
        fail(StrCat("read event ", id, ": version ",
                    history_.object_name(e.version.object), "_",
                    e.version.writer, ".", e.version.seq,
                    " has not been produced"));
        return;
      }
      if (*wit != VersionKind::kVisible) {
        fail(StrCat("read event ", id, ": only visible versions may be ",
                    "read (version is ", VersionKindName(*wit), ")"));
        return;
      }
      const uint32_t* wc = ts.write_count.find(e.version.object);
      if (wc != nullptr && *wc > 0) {
        VersionId own{e.version.object, e.txn, *wc};
        if (!(e.version == own)) {
          fail(StrCat("read event ", id, ": T", e.txn,
                      " must observe its own latest write of ",
                      history_.object_name(e.version.object)));
          return;
        }
      }
      break;
    }
    case EventType::kPredicateRead: {
      const auto& rels = history_.predicate_relations(e.predicate);
      std::set<ObjectId> seen;
      for (const VersionId& v : e.vset) {
        if (!seen.insert(v.object).second) {
          fail(StrCat("predicate read event ", id, ": version set selects ",
                      "two versions of ", history_.object_name(v.object)));
          return;
        }
        if (std::find(rels.begin(), rels.end(),
                      history_.object_relation(v.object)) == rels.end()) {
          fail(StrCat("predicate read event ", id, ": object ",
                      history_.object_name(v.object),
                      " is not in the predicate's relations"));
          return;
        }
        if (v.is_init()) continue;
        if (!produced_.contains(v)) {
          fail(StrCat("predicate read event ", id, ": version of ",
                      history_.object_name(v.object),
                      " has not been produced"));
          return;
        }
      }
      break;
    }
    case EventType::kCommit:
    case EventType::kAbort:
      ts.finished = true;
      break;
  }
  ts.has_events = true;
}

void IncrementalChecker::ObserveWrite(const Event& e) {
  // A committed read that observed its writer's then-latest version turns
  // intermediate the moment the writer writes the object again; the next
  // commit's prefix is the first to exhibit the G1b.
  if (g1b_fired_ || g1b_pending_ || g1b_watch_.empty()) return;
  if (g1b_watch_.contains(PackKey(e.txn, e.version.object))) {
    g1b_pending_ = true;
  }
}

graph::NodeId IncrementalChecker::NodeOf(TxnId txn) {
  auto [slot, inserted] = node_of_.try_emplace(txn);
  if (inserted) *slot = static_cast<graph::NodeId>(node_of_.size() - 1);
  return *slot;
}

void IncrementalChecker::FeedEdge(const Dependency& dep) {
  // The delta can re-derive one logical edge from several reads/objects;
  // the graphs need each (from, to, kind) once.
  uint8_t& seen_kinds = seen_edges_[PackKey(dep.from, dep.to)];
  uint8_t kind_bit = static_cast<uint8_t>(1u << static_cast<int>(dep.kind));
  if ((seen_kinds & kind_bit) != 0) return;
  seen_kinds |= kind_bit;
  graph::KindMask bit = Bit(dep.kind);
  if (track_gsia_ && !gsia_fired_ && (bit & kDependencyMask) != 0) {
    // G-SI(a): a dependency edge not backed by the start relation. Both
    // endpoints are committed once the edge exists, so the commit/begin
    // comparison is final at emission time.
    const History::TxnInfo& fi = history_.txn_info(dep.from);
    const History::TxnInfo& ti = history_.txn_info(dep.to);
    if (!(fi.commit_event < ti.begin_event)) gsia_fired_ = true;
  }
  bool wants =
      (ww_graph_ && (bit & Bit(DepKind::kWW)) != 0) ||
      (dep_graph_ && (bit & kDependencyMask) != 0) ||
      (item_graph_ && (bit & (kDependencyMask | Bit(DepKind::kRWItem))) != 0) ||
      (conflict_graph_ && (bit & kConflictMask) != 0) ||
      (gsingle_ && (bit & kConflictMask) != 0) ||
      (gsib_ && (bit & (kConflictMask | kStartMask)) != 0);
  if (!wants) return;
  graph::NodeId from = NodeOf(dep.from);
  graph::NodeId to = NodeOf(dep.to);
  size_t nodes = node_of_.size();
  auto feed = [&](std::optional<graph::DynamicSccDigraph>& g,
                  graph::KindMask mask) {
    if (g.has_value() && (bit & mask) != 0) {
      g->EnsureNodes(nodes);
      g->Insert(from, to, bit);
    }
  };
  feed(ww_graph_, Bit(DepKind::kWW));
  feed(dep_graph_, kDependencyMask);
  feed(item_graph_, kDependencyMask | Bit(DepKind::kRWItem));
  feed(conflict_graph_, kConflictMask);
  if (gsingle_.has_value() && (bit & kConflictMask) != 0) {
    gsingle_->EnsureNodes(nodes);
    gsingle_->Insert(from, to, bit);
  }
  if (gsib_.has_value() && (bit & (kConflictMask | kStartMask)) != 0) {
    gsib_->EnsureNodes(nodes);
    gsib_->Insert(from, to, bit);
  }
}

bool IncrementalChecker::PhenomenonHolds(Phenomenon p) {
  switch (p) {
    case Phenomenon::kG0:
      return ww_graph_->intra_kinds() != 0;
    case Phenomenon::kG1a:
      return g1a_fired_;
    case Phenomenon::kG1b:
      return g1b_fired_;
    case Phenomenon::kG1c:
      return dep_graph_->intra_kinds() != 0;
    case Phenomenon::kG2Item:
      return (item_graph_->intra_kinds() & Bit(DepKind::kRWItem)) != 0;
    case Phenomenon::kG2:
      return (conflict_graph_->intra_kinds() & kAntiMask) != 0;
    case Phenomenon::kGSingle:
      return gsingle_->Check();
    case Phenomenon::kGSIa:
      return gsia_fired_;
    case Phenomenon::kGSIb:
      return gsib_->Check();
    case Phenomenon::kGCursor:
      return gcursor_fired_;
  }
  ADYA_UNREACHABLE();
}

std::vector<Violation> IncrementalChecker::OnCommit(TxnId txn) {
  if (g1b_pending_) g1b_fired_ = true;
  const History::TxnInfo& info = history_.txn_info(txn);
  // G1a / G1b instances appear at the reader's own commit (the completion
  // rule turns its reads of in-flight data into aborted reads right here)
  // or, for G1b, at a watched later write — never from other commits,
  // which only move writers from "treated as aborted" to committed.
  auto observe = [&](const VersionId& v) {
    if (v.is_init()) return;
    if (!history_.IsCommitted(v.writer)) g1a_fired_ = true;
    if (v.writer == txn || g1b_fired_) return;
    if (v.seq != history_.FinalSeq(v.writer, v.object)) {
      g1b_fired_ = true;
    } else {
      const TxnValidation* ts = vstate_.find(v.writer);
      if (ts != nullptr && !ts->finished) {
        g1b_watch_.insert(PackKey(v.writer, v.object));
      }
    }
  };
  for (EventId rid : info.reads) {
    const Event& e = history_.events()[rid];
    observe(e.version);
    if (track_gcursor_ && !gcursor_fired_) {
      // G-cursor closed form: the object's ww edges form the chain of its
      // installer order, so a cycle with exactly one rw(item) edge exists
      // iff some read's version sits ≥ 2 positions before the reader's own
      // installation — reader → next installer (rw), then the ww chain
      // back up to the reader.
      std::optional<size_t> p = delta_.OrderIndex(e.version.object,
                                                  e.version.writer);
      std::optional<size_t> q = delta_.OrderIndex(e.version.object, txn);
      if (p.has_value() && q.has_value() && *q >= *p + 2) {
        gcursor_fired_ = true;
      }
    }
  }
  for (EventId pid : info.predicate_reads) {
    for (const VersionId& v : history_.events()[pid].vset) observe(v);
  }

  std::vector<Phenomenon> newly;
  for (Phenomenon p : ProscribedPhenomena(target_)) {
    if (reported_.count(p) != 0) continue;
    if (PhenomenonHolds(p)) newly.push_back(p);
  }
  std::vector<Violation> fresh;
  if (newly.empty()) return fresh;
  // Witness extraction: run the offline checker on the finalized prefix —
  // the detectors decided *that* a phenomenon holds; the offline checker
  // says *why*, with the exact witness the naive strategy would emit at
  // this commit. Amortized at most once per phenomenon kind.
  History prefix = history_;
  {
    ADYA_TIMED_PHASE(offline_options_.stats, "checker.version_order_us");
    Status finalize = prefix.Finalize();
    ADYA_CHECK_MSG(finalize.ok(), finalize.ToString());
  }
  PhenomenaChecker offline(prefix, offline_options_);
  for (Phenomenon p : newly) {
    std::optional<Violation> v = offline.Check(p);
    ADYA_CHECK_MSG(v.has_value(),
                   "incremental detector fired for "
                       << PhenomenonName(p)
                       << " but the offline checker finds no witness");
    reported_.insert(p);
    fresh.push_back(*std::move(v));
  }
  return fresh;
}

const PhenomenaChecker& IncrementalChecker::Offline() const {
  size_t events = history_.events().size();
  if (audit_.checker != nullptr && audit_.events == events) {
    return *audit_.checker;
  }
  if (audit_mode_) {
    audit_.checker =
        std::make_unique<PhenomenaChecker>(history_, offline_options_);
  } else {
    audit_.prefix = std::make_unique<History>(history_);
    {
      ADYA_TIMED_PHASE(offline_options_.stats, "checker.version_order_us");
      Status finalize = audit_.prefix->Finalize();
      ADYA_CHECK_MSG(finalize.ok(), finalize.ToString());
    }
    audit_.checker =
        std::make_unique<PhenomenaChecker>(*audit_.prefix, offline_options_);
  }
  audit_.events = events;
  return *audit_.checker;
}

std::vector<Violation> IncrementalChecker::CheckAll() const {
  return Offline().CheckAll();
}

LevelCheckResult IncrementalChecker::Check(IsolationLevel level) const {
  return CheckLevel(Offline(), level);
}

std::optional<Violation> IncrementalChecker::CheckPhenomenon(
    Phenomenon p) const {
  return Offline().Check(p);
}

}  // namespace adya
