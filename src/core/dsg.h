#ifndef ADYA_CORE_DSG_H_
#define ADYA_CORE_DSG_H_

#include <optional>
#include <string>
#include <vector>

#include "core/conflicts.h"
#include "graph/cycles.h"
#include "graph/digraph.h"
#include "history/history.h"

namespace adya {

/// The Direct Serialization Graph DSG(H) of Definition 7: one node per
/// committed transaction, one edge per (from, to, conflict kind) carrying
/// the list of direct conflicts that justify it. Parallel edges of
/// different kinds between the same pair are deliberately kept distinct —
/// phenomena like G-single count anti-dependency *edges* in a cycle.
///
/// When built with include_start_edges, this is the thesis's start-ordered
/// serialization graph SSG(H) (DSG plus start-dependency edges), which the
/// PL-SI check consumes.
class Dsg {
 public:
  explicit Dsg(const History& h,
               const ConflictOptions& options = ConflictOptions());
  /// Computes the conflicts on `pool` (see the sharded ComputeDependencies
  /// overload); the merge is unchanged, so the graph — edge ids included —
  /// is bit-identical to the serial constructor's.
  Dsg(const History& h, const ConflictOptions& options, ThreadPool* pool);
  /// Builds the graph from an already-computed dependency list instead of
  /// running ComputeDependencies — the merge (and so every edge id) is the
  /// same as if the other constructors had computed `deps` themselves.
  /// PhenomenonArtifacts uses this to share one conflict pass between the
  /// DSG, the G-cursor plan, and the SSG variants.
  Dsg(const History& h, std::vector<Dependency> deps);
  /// Same, with the dense-id translation pre-pass and the CSR freeze
  /// sharded over `pool` (the first-appearance merge itself stays serial —
  /// it defines the edge ids). Bit-identical graph at any thread count;
  /// null pool runs the serial passes.
  Dsg(const History& h, std::vector<Dependency> deps, ThreadPool* pool);

  const History& history() const { return *history_; }
  const graph::Digraph& graph() const { return graph_; }

  /// Node ids coincide with the history's dense committed-transaction
  /// numbering (ascending TxnId), so both lookups are O(1) array/hash
  /// probes against History::dense().
  size_t node_count() const;
  TxnId txn_of(graph::NodeId node) const;
  std::optional<graph::NodeId> node_of(TxnId txn) const;

  /// The direct conflicts merged into one edge.
  const std::vector<Dependency>& reasons(graph::EdgeId edge) const {
    return edge_reasons_[edge];
  }
  DepKind kind_of(graph::EdgeId edge) const { return edge_kinds_[edge]; }

  /// "T1 --ww--> T2" plus one reason line per conflict.
  std::string DescribeEdge(graph::EdgeId edge) const;
  /// Multi-line description of a witness cycle.
  std::string DescribeCycle(const graph::Cycle& cycle) const;

  /// Compact edge list like "T1 --ww--> T2, T1 --wr--> T2, T2 --rw--> T3"
  /// (deterministic order; used by golden tests against the paper figures).
  std::string EdgeSummary() const;

  /// Graphviz rendering with transaction names and edge kinds.
  std::string ToDot() const;

  /// A serialization order (topological over all conflict edges), when the
  /// DSG is acyclic. For H_serial this yields T1, T2, T3.
  std::optional<std::vector<TxnId>> SerializationOrder() const;

 private:
  const History* history_;
  graph::Digraph graph_;
  std::vector<std::vector<Dependency>> edge_reasons_;  // per edge
  std::vector<DepKind> edge_kinds_;                    // per edge
};

}  // namespace adya

#endif  // ADYA_CORE_DSG_H_
