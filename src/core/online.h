#ifndef ADYA_CORE_ONLINE_H_
#define ADYA_CORE_ONLINE_H_

#include <set>
#include <vector>

#include "common/result.h"
#include "core/incremental.h"
#include "core/levels.h"
#include "history/history.h"

namespace adya {

/// Streaming certification: feed events as a system executes; every commit
/// event triggers a check of the committed prefix against the target level,
/// and the first occurrence of each violated phenomenon is reported at the
/// commit that introduced it.
///
/// Semantics are those of an *enforcer*, not a postmortem: in-flight
/// transactions are treated as if they may still abort (the §4.2 completion
/// rule), so committing a reader of still-uncommitted data is flagged as
/// G1a immediately — precisely the paper's "T2's commit must be delayed
/// until T1's commit has succeeded" (§5.2). Cycle phenomena are
/// final-monotone (versions install in commit order, so the committed
/// prefix's DSG only gains edges): every cycle-based report also appears in
/// the offline check of the final history, and vice versa; G1a/G1b reports
/// are a superset of the offline ones (property-tested both ways).
///
/// The work is done by an IncrementalChecker (core/incremental.h), which
/// maintains the DSG and its cycle structure across commits instead of
/// re-running the level check on a completed copy of the prefix — amortized
/// per-commit cost proportional to the new conflict edges rather than
/// O(commits × check), with verdicts and witnesses bit-identical to the
/// naive strategy (pinned by tests/incremental_diff_test.cc; the
/// `bench_online_incremental` binary measures the gap this closes).
class OnlineChecker {
 public:
  /// `stats` and `gc` ride straight through to the IncrementalChecker:
  /// metrics under the checker.* names, and (when `gc.enabled`) the
  /// certified-stable-prefix GC of DESIGN.md §12.
  explicit OnlineChecker(IsolationLevel target,
                         obs::StatsRegistry* stats = nullptr,
                         const GcOptions& gc = GcOptions())
      : inner_(target, stats, gc) {}

  /// The live (unfinalized) history: declare relations, objects and
  /// predicates here before feeding events that use them.
  History& history() { return inner_.history(); }
  const History& history() const { return inner_.history(); }

  /// Feeds one event.
  ///  * ok(nullopt)    — no new violation;
  ///  * ok(Violation)  — this commit introduced a phenomenon the target
  ///    level proscribes (first report per phenomenon kind; the checker
  ///    keeps accepting events afterwards);
  ///  * error          — the event stream is not a well-formed history.
  Result<std::vector<Violation>> Feed(const Event& event) {
    return inner_.Feed(event);
  }

  IsolationLevel target() const { return inner_.target(); }
  size_t commits_checked() const { return inner_.commits_checked(); }

  /// Prefix-GC observability (all zero with GC off).
  const GcOptions& gc_options() const { return inner_.gc_options(); }
  uint64_t gc_runs() const { return inner_.gc_runs(); }
  uint64_t gc_freed_events() const { return inner_.gc_freed_events(); }

  /// Phenomena reported so far.
  const std::set<Phenomenon>& reported() const { return inner_.reported(); }

 private:
  IncrementalChecker inner_;
};

}  // namespace adya

#endif  // ADYA_CORE_ONLINE_H_
