#ifndef ADYA_CORE_ONLINE_H_
#define ADYA_CORE_ONLINE_H_

#include <vector>
#include <set>

#include "common/result.h"
#include "core/levels.h"
#include "history/history.h"

namespace adya {

/// Streaming certification: feed events as a system executes; every commit
/// event triggers a check of the committed prefix against the target level,
/// and the first occurrence of each violated phenomenon is reported at the
/// commit that introduced it.
///
/// Semantics are those of an *enforcer*, not a postmortem: in-flight
/// transactions are treated as if they may still abort (the §4.2 completion
/// rule), so committing a reader of still-uncommitted data is flagged as
/// G1a immediately — precisely the paper's "T2's commit must be delayed
/// until T1's commit has succeeded" (§5.2). Cycle phenomena are
/// final-monotone (versions install in commit order, so the committed
/// prefix's DSG only gains edges): every cycle-based report also appears in
/// the offline check of the final history, and vice versa; G1a/G1b reports
/// are a superset of the offline ones (property-tested both ways).
///
/// Each commit re-runs the level check on a completed copy of the prefix —
/// O(commits × check). Incremental DSG maintenance would amortize this;
/// the `bench_checker_scale` binary measures the gap this leaves.
class OnlineChecker {
 public:
  explicit OnlineChecker(IsolationLevel target) : target_(target) {}

  /// The live (unfinalized) history: declare relations, objects and
  /// predicates here before feeding events that use them.
  History& history() { return history_; }
  const History& history() const { return history_; }

  /// Feeds one event.
  ///  * ok(nullopt)    — no new violation;
  ///  * ok(Violation)  — this commit introduced a phenomenon the target
  ///    level proscribes (first report per phenomenon kind; the checker
  ///    keeps accepting events afterwards);
  ///  * error          — the event stream is not a well-formed history.
  Result<std::vector<Violation>> Feed(const Event& event);

  IsolationLevel target() const { return target_; }
  size_t commits_checked() const { return commits_checked_; }

  /// Phenomena reported so far.
  const std::set<Phenomenon>& reported() const { return reported_; }

 private:
  IsolationLevel target_;
  History history_;
  size_t commits_checked_ = 0;
  std::set<Phenomenon> reported_;
};

}  // namespace adya

#endif  // ADYA_CORE_ONLINE_H_
