#ifndef ADYA_CORE_CHECKER_API_H_
#define ADYA_CORE_CHECKER_API_H_

// The one public checking surface. The paper's point is that the
// definitions are implementation-independent; accordingly the checker
// implementations (serial PhenomenaChecker, sharded ParallelChecker,
// streaming IncrementalChecker) are interchangeable internals behind this
// facade — same verdicts, same witness text, bit for bit — and callers
// outside src/core/ select between them with CheckerOptions::mode instead
// of naming classes (cf. Elle's single check(opts, history) entry point).
// scripts/ci.sh guards against new direct uses of the internals.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/conflicts.h"
#include "core/incremental.h"
#include "core/levels.h"
#include "core/phenomena.h"
#include "obs/stats.h"

namespace adya {

class ThreadPool;
class ParallelChecker;

/// Which checker implementation evaluates the history. All three produce
/// bit-identical verdicts and witnesses (pinned by tests/checker_api_test.cc
/// and the differential sweeps); they differ only in cost profile:
///  * kSerial      — one thread, lowest constant factor;
///  * kParallel    — shards conflict construction, scans and cycle searches
///                   over `threads` workers;
///  * kIncremental — builds the streaming IncrementalChecker's persistent
///                   detectors; the right choice when the same history will
///                   be extended and re-checked (the online certifier path).
enum class CheckMode : uint8_t {
  kSerial,
  kParallel,
  kIncremental,
};

std::string_view CheckModeName(CheckMode mode);

/// The canonical option set for every checking entry point — this struct
/// replaces the per-implementation knobs that used to live in
/// core::CheckOptions and stress::CertifyOptions.
struct CheckerOptions {
  /// Conflict-edge construction tuning (shared by every mode).
  ConflictOptions conflicts;
  CheckMode mode = CheckMode::kSerial;
  /// Total parallelism for kParallel (pool workers + calling thread).
  int threads = 1;
  /// Online certifier only: history snapshots certified per drain cycle.
  int certify_batch = 1;
  /// Metrics sink. Null (the default) disables all instrumentation; every
  /// recording site is then a pointer null-check.
  obs::StatsRegistry* stats = nullptr;
  /// Streaming consumers only (online certifier, serve sessions):
  /// certified-stable-prefix GC for the IncrementalChecker (DESIGN.md §12).
  /// Ignored by the one-shot audit modes, whose history is already whole.
  GcOptions gc;
  /// Input format name for tools that load history text through the
  /// HistorySource registry (history/source.h): "adya", "elle-append",
  /// "elle-register", or "auto"/"" to sniff the content. Resolution happens
  /// at load time — the checker itself consumes only finalized histories.
  std::string input_format;

  /// Rejects out-of-range knobs (threads < 1, certify_batch < 1,
  /// zero-valued GC intervals when GC is enabled).
  Status Validate() const;

  /// Consumes one `--key=value` command-line argument if it is a checker
  /// flag (--check-mode=serial|parallel|incremental, --check-threads=N,
  /// --certify-batch=N, --incremental, --gc-watermark=N which also enables
  /// the prefix GC, --gc-min-window=N,
  /// --input-format=auto|adya|elle-append|elle-register; format names are
  /// validated at load time against the registry). Returns true when the
  /// argument was
  /// recognized; a recognized flag with a malformed or out-of-range value
  /// also sets *error. Shared by adya_stress and the bench harness so the
  /// flag vocabulary cannot fork.
  bool ParseFlag(std::string_view arg, std::string* error);

  /// Builds options from argv, ignoring arguments that are not checker
  /// flags. Errors on a malformed value or failed Validate().
  static Result<CheckerOptions> FromFlags(int argc, const char* const* argv);
};

/// The result of one facade check: the verdict and witnesses of
/// LevelCheckResult, plus which mode ran and a stats snapshot (populated
/// only when CheckerOptions::stats was set).
struct CheckReport {
  IsolationLevel level = IsolationLevel::kPL3;
  bool satisfied = false;
  /// The proscribed phenomena that occurred (empty iff satisfied).
  std::vector<Violation> violations;
  CheckMode mode = CheckMode::kSerial;
  obs::StatsSnapshot stats;
};

/// Facade over the three checker implementations. Construct once per
/// (finalized) history, then query levels or individual phenomena; the
/// conflict graphs are built once and shared across queries.
class Checker {
 public:
  /// `options` must Validate(); invalid options are a programmer error.
  explicit Checker(const History& h,
                   const CheckerOptions& options = CheckerOptions());
  /// With an external pool (not owned; must outlive the checker). For
  /// kParallel the pool's thread count governs the sharding; kSerial and
  /// kIncremental use it for their intra-artifact passes (parallel CSR
  /// build, SCC decomposition, sharded cycle scans) — verdicts and witness
  /// text stay bit-identical to the pool-less construction.
  Checker(const History& h, const CheckerOptions& options, ThreadPool* pool);
  ~Checker();

  CheckReport Check(IsolationLevel level) const;
  /// nullopt when the phenomenon does not occur; a witness otherwise.
  std::optional<Violation> CheckPhenomenon(Phenomenon p) const;
  /// Every phenomenon that occurs, in enum order.
  std::vector<Violation> CheckAll() const;

  const History& history() const { return *history_; }
  CheckMode mode() const { return options_.mode; }
  const CheckerOptions& options() const { return options_; }

 private:
  const History* history_;
  CheckerOptions options_;
  // Exactly one of these is non-null, per options_.mode.
  std::unique_ptr<PhenomenaChecker> serial_;
  std::unique_ptr<ParallelChecker> parallel_;
  std::unique_ptr<IncrementalChecker> incremental_;
};

/// One-shot convenience: `Check(h, level, options)` — the facade's whole
/// API in a single call.
CheckReport Check(const History& h, IsolationLevel level,
                  const CheckerOptions& options = CheckerOptions());

}  // namespace adya

#endif  // ADYA_CORE_CHECKER_API_H_
