#ifndef ADYA_CORE_CERTIFIER_H_
#define ADYA_CORE_CERTIFIER_H_

#include <vector>

#include "common/result.h"
#include "core/phenomena.h"
#include "history/history.h"

namespace adya {

/// Commit-time certification — the question an optimistic scheduler asks
/// (§5.6: the levels "impose constraints only when transactions commit"):
/// *if this transaction committed right now, would the history still
/// provide the requested level?* The thesis builds special graphs with a
/// node for the executing transaction; the equivalent operational form used
/// here replaces the transaction's completion with a commit, installs its
/// versions at the tail of each version order, re-finalizes, and compares
/// the level check against the baseline where the transaction aborts.
struct CommitTest {
  /// True when committing adds no violation the abort baseline lacks.
  bool can_commit = false;
  /// Violations that appear only if the transaction commits.
  std::vector<Violation> new_violations;
};

/// `h` must be finalized and `txn` aborted in it (the completion rule makes
/// every still-running transaction look aborted in a snapshot, so engine
/// recorder snapshots feed straight in). Fails if committing `txn` cannot
/// even produce a well-formed history (e.g. it would install after a dead
/// version) — reported as kFailedPrecondition with can_commit semantics
/// left to the caller.
Result<CommitTest> TestCommit(const History& h, TxnId txn,
                              IsolationLevel level);

/// The history `h` with `txn`'s abort replaced by a commit (its versions
/// install last in each version order). Building block for TestCommit,
/// exposed for tests and tooling.
Result<History> WithCommitted(const History& h, TxnId txn);

}  // namespace adya

#endif  // ADYA_CORE_CERTIFIER_H_
