#ifndef ADYA_CORE_CONFLICTS_H_
#define ADYA_CORE_CONFLICTS_H_

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "history/history.h"

namespace adya {

class ThreadPool;

/// The direct-conflict kinds of §4.4 (Figure 2), plus the start-dependency
/// used by the start-ordered serialization graph of the thesis's Snapshot
/// Isolation definition. Values are single bits so graph algorithms can
/// take kind masks.
enum class DepKind : uint8_t {
  kWW = 0,      // directly write-depends (Definition 6)
  kWRItem,      // directly item-read-depends (Definition 3)
  kWRPred,      // directly predicate-read-depends (Definition 3)
  kRWItem,      // directly item-anti-depends (Definition 5)
  kRWPred,      // directly predicate-anti-depends (Definition 5)
  kStart,       // start-depends: c_i precedes b_j (thesis, for PL-SI)
};

std::string_view DepKindName(DepKind kind);

constexpr graph::KindMask Bit(DepKind kind) {
  return graph::KindMask{1} << static_cast<int>(kind);
}

/// Dependency edges (read- or write-depends): the "depends" relation of
/// Definition 8.
inline constexpr graph::KindMask kDependencyMask =
    Bit(DepKind::kWW) | Bit(DepKind::kWRItem) | Bit(DepKind::kWRPred);
/// Anti-dependency edges.
inline constexpr graph::KindMask kAntiMask =
    Bit(DepKind::kRWItem) | Bit(DepKind::kRWPred);
/// All conflict edges of the DSG (start edges excluded).
inline constexpr graph::KindMask kConflictMask = kDependencyMask | kAntiMask;
inline constexpr graph::KindMask kStartMask = Bit(DepKind::kStart);

/// One direct conflict between two committed transactions, with enough
/// context to explain *why* the edge exists (Elle-style auditable output).
struct Dependency {
  TxnId from = 0;
  TxnId to = 0;
  DepKind kind = DepKind::kWW;
  /// The object whose versions conflict (for kStart: unused).
  ObjectId object = 0;
  /// kWW: the version `from` installed.  kWRItem/kWRPred: the version
  /// `from` installed that `to` read / that changed the matches.
  /// kRWItem/kRWPred: the version `from` read / selected in its Vset.
  VersionId from_version{};
  /// kWW/kRWItem/kRWPred: the version `to` installed.
  /// kWRItem: the version read (same as from_version).
  VersionId to_version{};
  /// kWRPred/kRWPred: the predicate involved.
  PredicateId predicate = 0;
  bool is_predicate = false;

  /// Human-readable description, e.g.
  /// "T2 --rw(item)--> T3: T2 read x1, T3 installed the next version x3".
  std::string Describe(const History& h) const;
};

struct ConflictOptions {
  /// Also compute start-dependency edges (needed only for PL-SI checking;
  /// quadratic in committed transactions).
  bool include_start_edges = false;
  /// Emit only the *earliest* predicate-anti-dependency edge per
  /// (predicate read, object) instead of Definition 4's edge to every later
  /// match-changing installer. Cycle-preserving: each skipped installer is
  /// reachable from the first one through the ww chain of the object's
  /// version order, so every DSG/SSG cycle of the full graph has a
  /// counterpart here with the same anti-dependency edge count — no
  /// phenomenon appears or disappears. Witness cycles and raw edge counts
  /// do change, so this stays off by default (audit output and the golden
  /// tests want the exact Definition 4 edge set); the online certifier
  /// turns it on because long histories of overlapping predicate reads and
  /// writes otherwise produce quadratically many rw(pred) edges.
  bool first_rw_pred_only = false;
  /// With include_start_edges, emit only the transitive reduction of the
  /// start order instead of all O(committed²) start edges. Cycle-preserving
  /// for the SSG phenomena: start-depends is a strict partial order, so its
  /// transitive reduction preserves start-reachability, and every pure-start
  /// segment of an SSG cycle re-expands into a path of reduction edges —
  /// start edges carry no anti-dependencies, so G-SI(b)'s anti-edge count is
  /// unchanged. G-SI(a) queries the start relation directly (commit-before-
  /// begin) and never depends on which start edges are materialized. The
  /// full edge set stays the default for audit output; the online certifier
  /// opts in.
  bool reduced_start_edges = false;
};

/// Computes every direct conflict of the history per §4.4. Only committed
/// transactions participate (the DSG has nodes only for committed
/// transactions); reads of uncommitted or aborted versions produce no edges
/// — phenomena G1a/G1b police those directly on the history.
///
/// Implementation notes on the predicate definitions (see DESIGN.md §3):
///  * predicate-read-depends uses the *latest* change at or before the
///    selected version (§4.4.1's "we use the latest transaction where a
///    change to Vset(P) occurs");
///  * predicate-anti-depends adds an edge to *every* later committed
///    installer that changes the matches (Definition 4);
///  * a Vset entry from an uncommitted/aborted writer has no position in
///    the version order and contributes no predicate edges;
///  * objects of P's relations absent from a recorded Vset implicitly
///    selected x_init.
std::vector<Dependency> ComputeDependencies(
    const History& h, const ConflictOptions& options = ConflictOptions());

/// Sharded variant: splits each conflict phase (write-dependencies by
/// object, item read/anti-dependencies and predicate dependencies by event
/// range) across `pool` and concatenates the shard outputs in phase/range
/// order, which reproduces the serial emission order exactly — the returned
/// vector is bit-identical to the serial overload's. A null or single-thread
/// pool falls back to the serial path.
std::vector<Dependency> ComputeDependencies(const History& h,
                                            const ConflictOptions& options,
                                            ThreadPool* pool);

}  // namespace adya

#endif  // ADYA_CORE_CONFLICTS_H_
