#ifndef ADYA_CORE_CONFLICTS_H_
#define ADYA_CORE_CONFLICTS_H_

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "graph/digraph.h"
#include "history/history.h"

namespace adya {

class ThreadPool;

namespace obs {
class StatsRegistry;
}  // namespace obs

/// The direct-conflict kinds of §4.4 (Figure 2), plus the start-dependency
/// used by the start-ordered serialization graph of the thesis's Snapshot
/// Isolation definition. Values are single bits so graph algorithms can
/// take kind masks.
enum class DepKind : uint8_t {
  kWW = 0,      // directly write-depends (Definition 6)
  kWRItem,      // directly item-read-depends (Definition 3)
  kWRPred,      // directly predicate-read-depends (Definition 3)
  kRWItem,      // directly item-anti-depends (Definition 5)
  kRWPred,      // directly predicate-anti-depends (Definition 5)
  kStart,       // start-depends: c_i precedes b_j (thesis, for PL-SI)
};

std::string_view DepKindName(DepKind kind);

constexpr graph::KindMask Bit(DepKind kind) {
  return graph::KindMask{1} << static_cast<int>(kind);
}

/// Dependency edges (read- or write-depends): the "depends" relation of
/// Definition 8.
inline constexpr graph::KindMask kDependencyMask =
    Bit(DepKind::kWW) | Bit(DepKind::kWRItem) | Bit(DepKind::kWRPred);
/// Anti-dependency edges.
inline constexpr graph::KindMask kAntiMask =
    Bit(DepKind::kRWItem) | Bit(DepKind::kRWPred);
/// All conflict edges of the DSG (start edges excluded).
inline constexpr graph::KindMask kConflictMask = kDependencyMask | kAntiMask;
inline constexpr graph::KindMask kStartMask = Bit(DepKind::kStart);

/// One direct conflict between two committed transactions, with enough
/// context to explain *why* the edge exists (Elle-style auditable output).
struct Dependency {
  TxnId from = 0;
  TxnId to = 0;
  DepKind kind = DepKind::kWW;
  /// The object whose versions conflict (for kStart: unused).
  ObjectId object = 0;
  /// kWW: the version `from` installed.  kWRItem/kWRPred: the version
  /// `from` installed that `to` read / that changed the matches.
  /// kRWItem/kRWPred: the version `from` read / selected in its Vset.
  VersionId from_version{};
  /// kWW/kRWItem/kRWPred: the version `to` installed.
  /// kWRItem: the version read (same as from_version).
  VersionId to_version{};
  /// kWRPred/kRWPred: the predicate involved.
  PredicateId predicate = 0;
  bool is_predicate = false;

  /// Human-readable description, e.g.
  /// "T2 --rw(item)--> T3: T2 read x1, T3 installed the next version x3".
  std::string Describe(const History& h) const;
};

struct ConflictOptions {
  /// Also compute start-dependency edges (needed only for PL-SI checking;
  /// quadratic in committed transactions).
  bool include_start_edges = false;
  /// Emit only the *earliest* predicate-anti-dependency edge per
  /// (predicate read, object) instead of Definition 4's edge to every later
  /// match-changing installer. Cycle-preserving: each skipped installer is
  /// reachable from the first one through the ww chain of the object's
  /// version order, so every DSG/SSG cycle of the full graph has a
  /// counterpart here with the same anti-dependency edge count — no
  /// phenomenon appears or disappears. Witness cycles and raw edge counts
  /// do change, so this stays off by default (audit output and the golden
  /// tests want the exact Definition 4 edge set); the online certifier
  /// turns it on because long histories of overlapping predicate reads and
  /// writes otherwise produce quadratically many rw(pred) edges.
  bool first_rw_pred_only = false;
  /// With include_start_edges, emit only the transitive reduction of the
  /// start order instead of all O(committed²) start edges. Cycle-preserving
  /// for the SSG phenomena: start-depends is a strict partial order, so its
  /// transitive reduction preserves start-reachability, and every pure-start
  /// segment of an SSG cycle re-expands into a path of reduction edges —
  /// start edges carry no anti-dependencies, so G-SI(b)'s anti-edge count is
  /// unchanged. G-SI(a) queries the start relation directly (commit-before-
  /// begin) and never depends on which start edges are materialized. The
  /// full edge set stays the default for audit output; the online certifier
  /// opts in.
  bool reduced_start_edges = false;
  /// Threshold forwarded to graph::CycleOptions::bitset_max_scc by every
  /// cycle-based phenomenon check (G-single / G-SI(b) / G-cursor): SCCs up
  /// to this size answer per-pivot-edge existence with bitset reachability
  /// rows instead of a BFS per candidate edge. Purely a performance knob —
  /// the witness is always re-extracted by the deterministic BFS, so
  /// verdicts and witness text are identical at any setting. 0 forces the
  /// BFS path, UINT32_MAX forces the bitset path (the differential tests
  /// pin both extremes against each other).
  uint32_t cycle_bitset_max_scc = 4096;
  /// Metrics sink threaded through every checker layer (conflict-edge
  /// construction, phenomenon checks, incremental deltas) — the single
  /// plumbing point, so serial, parallel, and incremental checking report
  /// the same metric names. Null (the default) disables instrumentation;
  /// options never own the registry. Does not affect results.
  obs::StatsRegistry* stats = nullptr;
};

/// Computes every direct conflict of the history per §4.4. Only committed
/// transactions participate (the DSG has nodes only for committed
/// transactions); reads of uncommitted or aborted versions produce no edges
/// — phenomena G1a/G1b police those directly on the history.
///
/// Implementation notes on the predicate definitions (see DESIGN.md §3):
///  * predicate-read-depends uses the *latest* change at or before the
///    selected version (§4.4.1's "we use the latest transaction where a
///    change to Vset(P) occurs");
///  * predicate-anti-depends adds an edge to *every* later committed
///    installer that changes the matches (Definition 4);
///  * a Vset entry from an uncommitted/aborted writer has no position in
///    the version order and contributes no predicate edges;
///  * objects of P's relations absent from a recorded Vset implicitly
///    selected x_init.
std::vector<Dependency> ComputeDependencies(
    const History& h, const ConflictOptions& options = ConflictOptions());

/// Sharded variant: splits each conflict phase (write-dependencies by
/// object, item read/anti-dependencies and predicate dependencies by event
/// range) across `pool` and concatenates the shard outputs in phase/range
/// order, which reproduces the serial emission order exactly — the returned
/// vector is bit-identical to the serial overload's. A null or single-thread
/// pool falls back to the serial path.
std::vector<Dependency> ComputeDependencies(const History& h,
                                            const ConflictOptions& options,
                                            ThreadPool* pool);

/// Just the start-dependency phase of ComputeDependencies — the kStart
/// conflicts, in the exact order the full analyzer emits them after the
/// conflict phases. `reduced` selects the transitive reduction of the start
/// order (see ConflictOptions::reduced_start_edges); false emits all
/// O(committed²) pairs. Appending the result to a start-edge-free
/// dependency list reproduces ComputeDependencies with include_start_edges
/// byte for byte, which is how PhenomenonArtifacts assembles its reduced
/// SSG from the conflict pass it already ran.
std::vector<Dependency> ComputeStartDependencies(const History& h,
                                                 bool reduced);

/// Incremental counterpart of ComputeDependencies for *event streams*: fed
/// one appended event at a time, it emits exactly the direct conflicts the
/// newly committed transaction introduces, so that over a whole stream the
/// union of the deltas equals the offline edge set of the completed history
/// (the live history with still-running transactions treated as aborted,
/// finalized under commit-order version orders — the only version orders an
/// event stream can carry).
///
/// Only commit events introduce edges: conflicts relate committed
/// transactions, and a transaction's reads/writes are processed when it
/// commits. Reads of a version whose writer is still running are parked and
/// resolved at the writer's commit (or dropped at its abort). The caller
/// must feed only well-formed events (an IncrementalChecker validates each
/// event before forwarding it here); behaviour on malformed streams is
/// unspecified, except that `dead_violations()` tracks the one
/// stream-specific Finalize() failure — a deleted version that is not the
/// last in its commit-order version order — which cannot be rejected at the
/// offending event because it depends on later commits.
///
/// Honors ConflictOptions: first_rw_pred_only / reduced_start_edges trim
/// the emitted set exactly as the offline analyzer does, and
/// include_start_edges adds start-dependencies at each commit.
///
/// Value-semantic: copying a ConflictDelta checkpoints the derivation.
class ConflictDelta {
 public:
  explicit ConflictDelta(const ConflictOptions& options = ConflictOptions())
      : options_(options) {}

  /// Observes `h.events()[id]`, which must be the event just appended to
  /// the live history `h`, and returns the conflicts it introduced (empty
  /// for anything but a commit). Events must be fed exactly once, in order.
  std::vector<Dependency> OnEvent(const History& h, EventId id);

  /// Replays one seed writer of the truncated history `h` (see
  /// History::CollectPrefix) into a fresh delta: registers its versions as
  /// produced and commits it, installing each seeded object's surviving
  /// version at the front of the rebuilt order. Call once per
  /// h.SeedTransactions() entry, in that (commit) order, before feeding
  /// retained events.
  void SeedPhantom(const History& h, TxnId txn);

  /// Committed-installer order of `obj` so far — the prefix of the version
  /// order Finalize() would derive for the completed history.
  const std::vector<TxnId>& Order(ObjectId obj) const;
  /// Position of `txn` in Order(obj); nullopt while not installed.
  std::optional<size_t> OrderIndex(ObjectId obj, TxnId txn) const;

  /// Objects whose committed version order holds a dead (deleted) version
  /// in a non-final position. Finalize() of the completed prefix rejects
  /// exactly these; sticky and ascending (`begin()` is the object the
  /// offline error message names).
  const std::set<ObjectId>& dead_violations() const {
    return dead_violations_;
  }

 private:
  struct ObjectState {
    std::vector<TxnId> order;  // committed installers, commit order
    FlatMap<TxnId, uint32_t> index;  // installer -> position in `order`
    /// Predicates materialized over this object, ascending. Install() walks
    /// predicates in PredicateId order (emission order is part of the
    /// bit-identical contract); the hash table `preds_` has no ordered
    /// iteration, so the ordered key list lives here.
    std::vector<PredicateId> preds;
    VersionKind tail_kind = VersionKind::kUnborn;
    /// Item reads of the current tail version, waiting for the installer of
    /// the next version to materialize their rw(item) edge.
    struct TailWatch {
      TxnId reader;
      VersionId version;
    };
    std::vector<TailWatch> tail_watchers;
  };
  /// A committed reader's item read of a still-running writer's version.
  struct PendingRead {
    TxnId reader;
    VersionId version;
  };
  /// A committed predicate read whose Vset selection's writer still runs.
  struct PendingSelection {
    TxnId reader;
    EventId pred_event;
    ObjectId object;
    VersionId sel;
  };
  /// Per (object, predicate): the match-change positions seen so far plus
  /// the readers waiting for future match changes (Definition 4 rw(pred)).
  struct PredState {
    std::vector<ptrdiff_t> changes;
    bool last_match = false;
    struct Watch {
      TxnId reader;
      VersionId sel;
    };
    std::vector<Watch> watchers;
  };
  struct PredReadRef {
    TxnId reader;
    EventId event;
  };

  void SyncUniverse(const History& h);
  bool MatchesLive(const History& h, const VersionId& v,
                   PredicateId pred) const;
  PredState& Materialize(const History& h, ObjectId obj, PredicateId pred);
  void ProcessPredicateObject(const History& h, TxnId reader,
                              EventId pred_event, ObjectId obj,
                              const VersionId& sel, std::ptrdiff_t pos,
                              std::vector<Dependency>& out);
  void Install(const History& h, TxnId txn, std::vector<Dependency>& out);
  void CommitOf(const History& h, TxnId txn, EventId commit_event,
                std::vector<Dependency>& out);

  ConflictOptions options_;
  std::vector<ObjectState> objects_;
  std::vector<std::vector<ObjectId>> objects_by_relation_;
  FlatMap<VersionId, EventId> produced_;  // version -> its write event
  FlatMap<TxnId, std::vector<PendingRead>> pending_reads_;  // keyed by writer
  FlatMap<TxnId, std::vector<PendingSelection>> pending_selections_;
  // Keyed PackKey(object, predicate); ObjectState::preds holds each
  // object's materialized predicates in the ascending order Install needs.
  FlatMap<uint64_t, PredState> preds_;
  /// Committed predicate reads per relation, so objects added to the
  /// relation later still pick up their implicit x_init selection.
  std::vector<std::vector<PredReadRef>> pred_reads_by_relation_;
  // Start-dependency state (include_start_edges only), commit order.
  struct CommittedSpan {
    EventId begin;
    EventId commit;
    TxnId txn;
  };
  std::vector<CommittedSpan> by_commit_;
  std::vector<EventId> commit_events_;
  std::vector<EventId> prefix_max_begin_;
  std::set<ObjectId> dead_violations_;
};

}  // namespace adya

#endif  // ADYA_CORE_CONFLICTS_H_
