#include "core/conflicts.h"

#include <algorithm>
#include <optional>

#include "common/flat_hash.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "history/format.h"
#include "obs/stats.h"

namespace adya {

std::string_view DepKindName(DepKind kind) {
  switch (kind) {
    case DepKind::kWW:
      return "ww";
    case DepKind::kWRItem:
      return "wr(item)";
    case DepKind::kWRPred:
      return "wr(pred)";
    case DepKind::kRWItem:
      return "rw(item)";
    case DepKind::kRWPred:
      return "rw(pred)";
    case DepKind::kStart:
      return "start";
  }
  return "?";
}

std::string Dependency::Describe(const History& h) const {
  std::string head = StrCat("T", from, " --", DepKindName(kind), "--> T", to,
                            ": ");
  switch (kind) {
    case DepKind::kWW:
      return StrCat(head, "T", from, " installed ",
                    FormatVersion(h, from_version), ", T", to,
                    " installed the next version ",
                    FormatVersion(h, to_version));
    case DepKind::kWRItem:
      return StrCat(head, "T", to, " read ", FormatVersion(h, from_version),
                    " installed by T", from);
    case DepKind::kWRPred:
      return StrCat(head, FormatVersion(h, from_version), " by T", from,
                    " was the latest change of the matches of T", to,
                    "'s read of predicate ", h.predicate_name(predicate));
    case DepKind::kRWItem:
      return StrCat(head, "T", from, " read ", FormatVersion(h, from_version),
                    ", T", to, " installed the next version ",
                    FormatVersion(h, to_version));
    case DepKind::kRWPred:
      return StrCat(head, "T", to, " installed ",
                    FormatVersion(h, to_version),
                    ", changing the matches of T", from,
                    "'s read of predicate ", h.predicate_name(predicate),
                    " (which selected ", FormatVersion(h, from_version), ")");
    case DepKind::kStart:
      return StrCat(head, "T", from, " committed before T", to, " started");
  }
  return head;
}

namespace {

/// Computes all direct conflicts for one finalized history. Each phase
/// walks an explicit range and appends to a caller-supplied vector, so the
/// parallel overload of ComputeDependencies can shard a phase across a
/// thread pool and concatenate the shard outputs back into the exact serial
/// emission order (phases in Run() order; ranges ascending within a phase).
class Analyzer {
 public:
  Analyzer(const History& h, const ConflictOptions& options)
      : h_(h), options_(options) {
    ADYA_CHECK_MSG(h.finalized(), "ComputeDependencies needs Finalize()");
  }

  std::vector<Dependency> Run() {
    std::vector<Dependency> out;
    WriteDependencies(0, static_cast<ObjectId>(h_.object_count()), out);
    ItemReadAndAntiDependencies(h_.event_begin(), h_.event_end(), out);
    PredicateDependencies(h_.event_begin(), h_.event_end(), out);
    if (options_.include_start_edges) StartDependencies(out);
    return out;
  }

  // Definition 6: Tj directly write-depends on Ti if Ti installs x_i and Tj
  // installs x's next version. Objects in [begin, end).
  void WriteDependencies(ObjectId begin, ObjectId end,
                         std::vector<Dependency>& out) {
    for (ObjectId obj = begin; obj < end; ++obj) {
      const std::vector<TxnId>& order = h_.VersionOrder(obj);
      for (size_t i = 0; i + 1 < order.size(); ++i) {
        Dependency dep;
        dep.from = order[i];
        dep.to = order[i + 1];
        dep.kind = DepKind::kWW;
        dep.object = obj;
        dep.from_version = *h_.InstalledVersion(order[i], obj);
        dep.to_version = *h_.InstalledVersion(order[i + 1], obj);
        Emit(std::move(dep), out);
      }
    }
  }

  // Definitions 3 and 5, item cases. One pass over read events of committed
  // readers; versions written by uncommitted/aborted transactions have no
  // position in the version order and yield no edges (G1a covers them).
  // Events in [begin, end).
  void ItemReadAndAntiDependencies(EventId begin, EventId end,
                                   std::vector<Dependency>& out) {
    for (EventId id = begin; id < end; ++id) {
      const Event& e = h_.event(id);
      if (e.type != EventType::kRead || !h_.IsCommitted(e.txn)) continue;
      const VersionId& v = e.version;
      if (!h_.IsCommitted(v.writer)) continue;
      // Ti --wr--> Tj. For a read of an intermediate version of a committed
      // transaction (a G1b violation) we still attribute the dependency to
      // the writer; this only affects histories already outside PL-2.
      {
        Dependency dep;
        dep.from = v.writer;
        dep.to = e.txn;
        dep.kind = DepKind::kWRItem;
        dep.object = v.object;
        dep.from_version = v;
        dep.to_version = v;
        Emit(std::move(dep), out);
      }
      // Tj --rw--> (installer of the next version after the one read).
      std::optional<size_t> pos = h_.OrderIndex(v.object, v.writer);
      ADYA_CHECK_MSG(pos.has_value(),
                     "committed writer must appear in the version order");
      const std::vector<TxnId>& order = h_.VersionOrder(v.object);
      if (*pos + 1 < order.size()) {
        Dependency dep;
        dep.from = e.txn;
        dep.to = order[*pos + 1];
        dep.kind = DepKind::kRWItem;
        dep.object = v.object;
        dep.from_version = v;
        dep.to_version = *h_.InstalledVersion(order[*pos + 1], v.object);
        Emit(std::move(dep), out);
      }
    }
  }

  // Version-order positions whose install changes the matches of `pred`
  // (Definition 2: the match status differs from the immediate
  // predecessor's; x_init, which never matches, precedes index 0).
  // Ascending; cached per (object, predicate) so both predicate-dependency
  // rules reduce to a binary search instead of a walk over every version.
  const std::vector<ptrdiff_t>& ChangeIndices(ObjectId obj, PredicateId pred) {
    uint64_t key = PackKey(obj, pred);
    if (const std::vector<ptrdiff_t>* hit = change_cache_.find(key)) {
      return *hit;
    }
    std::vector<ptrdiff_t> changes;
    bool prev = false;
    const std::vector<TxnId>& order = h_.VersionOrder(obj);
    for (size_t i = 0; i < order.size(); ++i) {
      bool match = h_.Matches(*h_.InstalledVersion(order[i], obj), pred);
      if (match != prev) changes.push_back(static_cast<ptrdiff_t>(i));
      prev = match;
    }
    std::vector<ptrdiff_t>* slot = change_cache_.try_emplace(key).first;
    *slot = std::move(changes);
    return *slot;
  }

  // Definitions 3 (predicate case), 4 and 5 (predicate case). Events in
  // [begin, end).
  void PredicateDependencies(EventId begin, EventId end,
                             std::vector<Dependency>& out) {
    // Objects grouped by relation, so each predicate read visits only the
    // objects its predicate ranges over.
    std::vector<std::vector<ObjectId>> by_relation(h_.relation_count());
    for (ObjectId obj = 0; obj < h_.object_count(); ++obj) {
      by_relation[h_.object_relation(obj)].push_back(obj);
    }
    FlatMap<ObjectId, VersionId> selected;  // hoisted: keeps its capacity
    for (EventId id = begin; id < end; ++id) {
      const Event& e = h_.event(id);
      if (e.type != EventType::kPredicateRead || !h_.IsCommitted(e.txn)) {
        continue;
      }
      selected.clear();
      for (const VersionId& v : e.vset) selected[v.object] = v;
      const std::vector<RelationId>& rels = h_.predicate_relations(e.predicate);
      for (auto rel_it = rels.begin(); rel_it != rels.end(); ++rel_it) {
        if (std::find(rels.begin(), rel_it, *rel_it) != rel_it) continue;
        for (ObjectId obj : by_relation[*rel_it]) {
          // Position of the selected version in the version order; the
          // implicit selection is x_init (position "before index 0").
          const VersionId* sel_hit = selected.find(obj);
          VersionId sel = sel_hit == nullptr ? InitVersion(obj) : *sel_hit;
          ptrdiff_t pos;
          if (sel.is_init()) {
            pos = -1;
          } else {
            if (!h_.IsCommitted(sel.writer)) continue;  // unpositionable
            std::optional<size_t> idx = h_.OrderIndex(obj, sel.writer);
            ADYA_CHECK(idx.has_value());
            pos = static_cast<ptrdiff_t>(*idx);
          }
          const std::vector<TxnId>& order = h_.VersionOrder(obj);
          const std::vector<ptrdiff_t>& changes =
              ChangeIndices(obj, e.predicate);
          auto next = std::upper_bound(changes.begin(), changes.end(), pos);
          // wr(pred): the latest change at or before the selected version.
          if (next != changes.begin()) {
            size_t j = static_cast<size_t>(*(next - 1));
            Dependency dep;
            dep.from = order[j];
            dep.to = e.txn;
            dep.kind = DepKind::kWRPred;
            dep.object = obj;
            dep.from_version = *h_.InstalledVersion(order[j], obj);
            dep.to_version = sel;
            dep.predicate = e.predicate;
            dep.is_predicate = true;
            Emit(std::move(dep), out);
          }
          // rw(pred): every later change overwrites this predicate read
          // (Definition 4) — or only the earliest when the caller asked for
          // the cycle-equivalent reduced edge set (see ConflictOptions).
          for (auto it2 = next; it2 != changes.end(); ++it2) {
            size_t j = static_cast<size_t>(*it2);
            Dependency dep;
            dep.from = e.txn;
            dep.to = order[j];
            dep.kind = DepKind::kRWPred;
            dep.object = obj;
            dep.from_version = sel;
            dep.to_version = *h_.InstalledVersion(order[j], obj);
            dep.predicate = e.predicate;
            dep.is_predicate = true;
            // In first-only mode a self "edge" (dropped by Emit) must not
            // stop the scan: the earliest edge that exists in the full set
            // is the one to the next change by a *different* transaction.
            bool real_edge = dep.from != dep.to;
            Emit(std::move(dep), out);
            if (options_.first_rw_pred_only && real_edge) break;
          }
        }
      }
    }
  }

  // Thesis start-depends (used by the PL-SI check): Tj start-depends on Ti
  // iff Ti's commit precedes Tj's start. The pairwise scan reads the dense
  // index's flat event-anchor arrays, not txn_info's tree.
  void StartDependencies(std::vector<Dependency>& out) {
    const DenseTxnIndex& dense = h_.dense();
    const std::vector<TxnId>& committed = dense.committed_txns();
    if (options_.reduced_start_edges) {
      ReducedStartDependencies(committed, out);
      return;
    }
    for (uint32_t i = 0; i < committed.size(); ++i) {
      EventId commit = dense.committed_commit_event(i);
      for (uint32_t j = 0; j < committed.size(); ++j) {
        if (i == j) continue;
        if (commit < dense.committed_begin_event(j)) {
          Dependency dep;
          dep.from = committed[i];
          dep.to = committed[j];
          dep.kind = DepKind::kStart;
          Emit(std::move(dep), out);
        }
      }
    }
  }

  // Transitive reduction of the start order (see ConflictOptions): the edge
  // i->j (c_i < b_j) is redundant iff some committed k has c_i < b_k and
  // c_k < b_j — equivalently iff c_i < max{b_k : c_k < b_j}. With the
  // committed transactions sorted by commit event, that max is a prefix
  // maximum and the survivors for each j form one contiguous commit-order
  // range, so the whole reduction is O(n log n + edges kept).
  void ReducedStartDependencies(const std::vector<TxnId>& committed,
                                std::vector<Dependency>& out) {
    struct Span {
      EventId begin, commit;
      TxnId txn;
    };
    const DenseTxnIndex& dense = h_.dense();
    std::vector<Span> by_commit;
    by_commit.reserve(committed.size());
    for (uint32_t i = 0; i < committed.size(); ++i) {
      by_commit.push_back(Span{dense.committed_begin_event(i),
                               dense.committed_commit_event(i), committed[i]});
    }
    std::sort(by_commit.begin(), by_commit.end(),
              [](const Span& a, const Span& b) { return a.commit < b.commit; });
    std::vector<EventId> commits(by_commit.size());
    std::vector<EventId> prefix_max_begin(by_commit.size());
    for (size_t i = 0; i < by_commit.size(); ++i) {
      commits[i] = by_commit[i].commit;
      prefix_max_begin[i] =
          i == 0 ? by_commit[i].begin
                 : std::max(prefix_max_begin[i - 1], by_commit[i].begin);
    }
    for (uint32_t ti = 0; ti < committed.size(); ++ti) {
      TxnId to = committed[ti];
      EventId begin = dense.committed_begin_event(ti);
      // Predecessors of `to`: commits before its begin.
      size_t preds = static_cast<size_t>(
          std::lower_bound(commits.begin(), commits.end(), begin) -
          commits.begin());
      if (preds == 0) continue;
      // Survivors: predecessors whose commit is not before any
      // predecessor's begin.
      size_t first = static_cast<size_t>(
          std::lower_bound(commits.begin(), commits.begin() + preds,
                           prefix_max_begin[preds - 1]) -
          commits.begin());
      for (size_t i = first; i < preds; ++i) {
        Dependency dep;
        dep.from = by_commit[i].txn;
        dep.to = to;
        dep.kind = DepKind::kStart;
        Emit(std::move(dep), out);
      }
    }
  }

 private:
  static void Emit(Dependency dep, std::vector<Dependency>& out) {
    if (dep.from == dep.to) return;  // conflicts relate distinct transactions
    out.push_back(std::move(dep));
  }

  const History& h_;
  ConflictOptions options_;
  // Keyed PackKey(object, predicate). Cache lookups only — never iterated,
  // so the hash table's lack of order is fine here.
  FlatMap<uint64_t, std::vector<ptrdiff_t>> change_cache_;
};

/// One unit of sharded conflict work: a phase plus the id range it covers.
/// Shards are ordered (phase, begin) ascending, which is exactly the serial
/// emission order, so concatenating their outputs reproduces it.
struct ConflictShard {
  enum Phase { kWrite, kItem, kPredicate, kStart } phase;
  uint32_t begin = 0;
  uint32_t end = 0;
  std::vector<Dependency> out;
};

}  // namespace

std::vector<Dependency> ComputeDependencies(const History& h,
                                            const ConflictOptions& options) {
  ADYA_TIMED_PHASE(options.stats, "checker.conflicts_us");
  return Analyzer(h, options).Run();
}

std::vector<Dependency> ComputeStartDependencies(const History& h,
                                                 bool reduced) {
  ConflictOptions options;
  options.include_start_edges = true;
  options.reduced_start_edges = reduced;
  Analyzer analyzer(h, options);
  std::vector<Dependency> out;
  analyzer.StartDependencies(out);
  return out;
}


std::vector<Dependency> ComputeDependencies(const History& h,
                                            const ConflictOptions& options,
                                            ThreadPool* pool) {
  ADYA_TIMED_PHASE(options.stats, "checker.conflicts_us");
  if (pool == nullptr || pool->threads() <= 1) {
    return Analyzer(h, options).Run();
  }
  // ~4 chunks per thread so uneven shard costs balance via work stealing.
  size_t parts = static_cast<size_t>(pool->threads()) * 4;
  auto chunked = [&](ConflictShard::Phase phase, size_t n,
                     std::vector<ConflictShard>& shards) {
    size_t chunk = (n + parts - 1) / parts;
    if (chunk == 0) chunk = 1;
    for (size_t b = 0; b < n; b += chunk) {
      shards.push_back(ConflictShard{phase, static_cast<uint32_t>(b),
                                     static_cast<uint32_t>(
                                         std::min(n, b + chunk)),
                                     {}});
    }
  };
  std::vector<ConflictShard> shards;
  chunked(ConflictShard::kWrite, h.object_count(), shards);
  chunked(ConflictShard::kItem, h.events().size(), shards);
  chunked(ConflictShard::kPredicate, h.events().size(), shards);
  if (options.include_start_edges) {
    // One shard: start edges are either the cheap transitive reduction or
    // an O(n²) audit-only walk nothing else overlaps with.
    shards.push_back(ConflictShard{ConflictShard::kStart, 0, 0, {}});
  }
  pool->ParallelFor(shards.size(), [&](size_t i) {
    ConflictShard& shard = shards[i];
    // Analyzer per shard: the predicate-change cache is per-instance, so
    // shards never share mutable state.
    Analyzer analyzer(h, options);
    switch (shard.phase) {
      case ConflictShard::kWrite:
        analyzer.WriteDependencies(shard.begin, shard.end, shard.out);
        break;
      case ConflictShard::kItem:
        // Event shards are chunked over events().size(); truncated suffixes
        // address events from event_begin() up.
        analyzer.ItemReadAndAntiDependencies(h.event_begin() + shard.begin,
                                             h.event_begin() + shard.end,
                                             shard.out);
        break;
      case ConflictShard::kPredicate:
        analyzer.PredicateDependencies(h.event_begin() + shard.begin,
                                       h.event_begin() + shard.end,
                                       shard.out);
        break;
      case ConflictShard::kStart:
        analyzer.StartDependencies(shard.out);
        break;
    }
  });
  size_t total = 0;
  for (const ConflictShard& shard : shards) total += shard.out.size();
  std::vector<Dependency> merged;
  merged.reserve(total);
  for (ConflictShard& shard : shards) {
    std::move(shard.out.begin(), shard.out.end(), std::back_inserter(merged));
  }
  return merged;
}

// ---------------------------------------------------------------------------
// ConflictDelta: the same five conflict rules, restated per commit.
// ---------------------------------------------------------------------------

namespace {

void EmitDelta(Dependency dep, std::vector<Dependency>& out) {
  if (dep.from == dep.to) return;  // conflicts relate distinct transactions
  out.push_back(std::move(dep));
}

}  // namespace

void ConflictDelta::SyncUniverse(const History& h) {
  if (objects_by_relation_.size() < h.relation_count()) {
    objects_by_relation_.resize(h.relation_count());
    pred_reads_by_relation_.resize(h.relation_count());
  }
  if (objects_.size() == h.object_count()) return;
  std::vector<Dependency> scratch;
  for (ObjectId obj = static_cast<ObjectId>(objects_.size());
       obj < h.object_count(); ++obj) {
    objects_.emplace_back();
    RelationId rel = h.object_relation(obj);
    objects_by_relation_[rel].push_back(obj);
    // Every committed predicate read over this relation implicitly selected
    // the new object's x_init. The object has no installs yet, so this can
    // only park rw(pred) watchers — never emit an edge.
    for (const PredReadRef& ref : pred_reads_by_relation_[rel]) {
      ProcessPredicateObject(h, ref.reader, ref.event, obj, InitVersion(obj),
                             /*pos=*/-1, scratch);
    }
    ADYA_CHECK_MSG(scratch.empty(),
                   "a fresh object cannot introduce conflict edges");
  }
}

bool ConflictDelta::MatchesLive(const History& h, const VersionId& v,
                                PredicateId pred) const {
  // The offline analyzer asks History::Matches, which needs the finalized
  // write-event index; the delta keeps its own version -> write-event map
  // so it can answer on the live history.
  const EventId* write = produced_.find(v);
  ADYA_CHECK_MSG(write != nullptr, "matches query for unseen version");
  if (*write < h.event_begin()) {
    // The write event was collected; the seed summary carries kind + row.
    const History::SeedVersion* seed = h.seed_version(v);
    ADYA_CHECK_MSG(seed != nullptr, "collected version has no seed");
    if (seed->kind != VersionKind::kVisible) return false;
    return h.predicate(pred).Matches(seed->row);
  }
  const Event& w = h.event(*write);
  if (w.written_kind != VersionKind::kVisible) return false;
  return h.predicate(pred).Matches(w.row);
}

ConflictDelta::PredState& ConflictDelta::Materialize(const History& h,
                                                     ObjectId obj,
                                                     PredicateId pred) {
  uint64_t key = PackKey(obj, pred);
  if (PredState* hit = preds_.find(key)) return *hit;
  PredState state;
  const std::vector<TxnId>& order = objects_[obj].order;
  for (size_t i = 0; i < order.size(); ++i) {
    VersionId installed{obj, order[i], h.FinalSeq(order[i], obj)};
    bool match = MatchesLive(h, installed, pred);
    if (match != state.last_match) {
      state.changes.push_back(static_cast<std::ptrdiff_t>(i));
    }
    state.last_match = match;
  }
  // Keep the object's materialized-predicate list sorted: Install() walks
  // it in ascending PredicateId order, matching the ordered map's
  // iteration this table replaced.
  std::vector<PredicateId>& list = objects_[obj].preds;
  list.insert(std::lower_bound(list.begin(), list.end(), pred), pred);
  PredState* slot = preds_.try_emplace(key).first;
  *slot = std::move(state);
  return *slot;
}

void ConflictDelta::ProcessPredicateObject(const History& h, TxnId reader,
                                           EventId pred_event, ObjectId obj,
                                           const VersionId& sel,
                                           std::ptrdiff_t pos,
                                           std::vector<Dependency>& out) {
  PredicateId pred = h.event(pred_event).predicate;
  PredState& state = Materialize(h, obj, pred);
  const std::vector<TxnId>& order = objects_[obj].order;
  auto next = std::upper_bound(state.changes.begin(), state.changes.end(),
                               pos);
  // wr(pred): the latest change at or before the selected version.
  if (next != state.changes.begin()) {
    size_t j = static_cast<size_t>(*(next - 1));
    Dependency dep;
    dep.from = order[j];
    dep.to = reader;
    dep.kind = DepKind::kWRPred;
    dep.object = obj;
    dep.from_version = VersionId{obj, order[j], h.FinalSeq(order[j], obj)};
    dep.to_version = sel;
    dep.predicate = pred;
    dep.is_predicate = true;
    EmitDelta(std::move(dep), out);
  }
  // rw(pred): every later change overwrites this read (Definition 4), or
  // only the earliest real edge in first-only mode. Future changes are
  // covered by a watcher: permanent in full mode, until the first real edge
  // in first-only mode.
  bool resolved = false;
  for (auto it2 = next; it2 != state.changes.end(); ++it2) {
    size_t j = static_cast<size_t>(*it2);
    Dependency dep;
    dep.from = reader;
    dep.to = order[j];
    dep.kind = DepKind::kRWPred;
    dep.object = obj;
    dep.from_version = sel;
    dep.to_version = VersionId{obj, order[j], h.FinalSeq(order[j], obj)};
    dep.predicate = pred;
    dep.is_predicate = true;
    bool real_edge = dep.from != dep.to;
    EmitDelta(std::move(dep), out);
    if (options_.first_rw_pred_only && real_edge) {
      resolved = true;
      break;
    }
  }
  if (!options_.first_rw_pred_only || !resolved) {
    state.watchers.push_back(PredState::Watch{reader, sel});
  }
}

void ConflictDelta::Install(const History& h, TxnId txn,
                            std::vector<Dependency>& out) {
  const History::TxnInfo& info = h.txn_info(txn);
  for (const auto& [obj, writes] : info.writes) {
    ObjectState& os = objects_[obj];
    VersionId installed{obj, txn, static_cast<uint32_t>(writes.size())};
    if (!os.order.empty()) {
      // A dead version being succeeded is exactly the "dead version must be
      // the last version" Finalize() failure of the completed prefix.
      if (os.tail_kind == VersionKind::kDead) dead_violations_.insert(obj);
      TxnId prev = os.order.back();
      Dependency dep;
      dep.from = prev;
      dep.to = txn;
      dep.kind = DepKind::kWW;
      dep.object = obj;
      dep.from_version = VersionId{obj, prev, h.FinalSeq(prev, obj)};
      dep.to_version = installed;
      EmitDelta(std::move(dep), out);
    }
    // Readers of the old tail anti-depend on the new installer.
    for (const ObjectState::TailWatch& watch : os.tail_watchers) {
      Dependency dep;
      dep.from = watch.reader;
      dep.to = txn;
      dep.kind = DepKind::kRWItem;
      dep.object = obj;
      dep.from_version = watch.version;
      dep.to_version = installed;
      EmitDelta(std::move(dep), out);
    }
    os.tail_watchers.clear();
    os.index[txn] = static_cast<uint32_t>(os.order.size());
    os.order.push_back(txn);
    const EventId* wit = produced_.find(installed);
    ADYA_CHECK_MSG(wit != nullptr, "install of unseen version");
    if (*wit < h.event_begin()) {
      const History::SeedVersion* seed = h.seed_version(installed);
      ADYA_CHECK_MSG(seed != nullptr, "collected version has no seed");
      os.tail_kind = seed->kind;
    } else {
      os.tail_kind = h.event(*wit).written_kind;
    }
    // Advance every materialized predicate over this object, in ascending
    // PredicateId order (os.preds is the table's ordered key list); a match
    // flip is a new change index and fires the parked rw(pred) watchers.
    size_t position = os.order.size() - 1;
    for (PredicateId pred : os.preds) {
      PredState* state_hit = preds_.find(PackKey(obj, pred));
      ADYA_CHECK(state_hit != nullptr);
      PredState& state = *state_hit;
      bool match = MatchesLive(h, installed, pred);
      if (match == state.last_match) continue;
      state.last_match = match;
      state.changes.push_back(static_cast<std::ptrdiff_t>(position));
      auto emit_watch = [&](const PredState::Watch& watch) {
        Dependency dep;
        dep.from = watch.reader;
        dep.to = txn;
        dep.kind = DepKind::kRWPred;
        dep.object = obj;
        dep.from_version = watch.sel;
        dep.to_version = installed;
        dep.predicate = pred;
        dep.is_predicate = true;
        EmitDelta(std::move(dep), out);
      };
      if (options_.first_rw_pred_only) {
        // Watchers whose reader is the installer stay parked: the edge that
        // exists in the full set is the one to the next change by a
        // *different* transaction.
        std::vector<PredState::Watch> keep;
        for (const PredState::Watch& watch : state.watchers) {
          if (watch.reader == txn) {
            keep.push_back(watch);
          } else {
            emit_watch(watch);
          }
        }
        state.watchers = std::move(keep);
      } else {
        for (const PredState::Watch& watch : state.watchers) {
          if (watch.reader != txn) emit_watch(watch);
        }
      }
    }
  }
}

void ConflictDelta::CommitOf(const History& h, TxnId txn,
                             EventId commit_event,
                             std::vector<Dependency>& out) {
  const History::TxnInfo& info = h.txn_info(txn);
  Install(h, txn, out);
  // Readers that were parked on this transaction while it ran: their
  // wr(item) materializes now, and their rw(item) tracks the next version
  // (this transaction installed the current tail, so that means watching).
  std::vector<PendingRead>* pending = pending_reads_.find(txn);
  if (pending != nullptr) {
    for (const PendingRead& pr : *pending) {
      Dependency dep;
      dep.from = txn;
      dep.to = pr.reader;
      dep.kind = DepKind::kWRItem;
      dep.object = pr.version.object;
      dep.from_version = pr.version;
      dep.to_version = pr.version;
      EmitDelta(std::move(dep), out);
      ObjectState& os = objects_[pr.version.object];
      const uint32_t* idx = os.index.find(txn);
      ADYA_CHECK(idx != nullptr);
      if (*idx + 1 < os.order.size()) {
        TxnId next = os.order[*idx + 1];
        Dependency rw;
        rw.from = pr.reader;
        rw.to = next;
        rw.kind = DepKind::kRWItem;
        rw.object = pr.version.object;
        rw.from_version = pr.version;
        rw.to_version =
            VersionId{pr.version.object, next,
                      h.FinalSeq(next, pr.version.object)};
        EmitDelta(std::move(rw), out);
      } else {
        os.tail_watchers.push_back(
            ObjectState::TailWatch{pr.reader, pr.version});
      }
    }
    pending_reads_.erase(txn);
  }
  if (std::vector<PendingSelection>* pending_sel =
          pending_selections_.find(txn)) {
    // Take ownership first: processing may materialize predicate state.
    std::vector<PendingSelection> sels = std::move(*pending_sel);
    pending_selections_.erase(txn);
    for (const PendingSelection& ps : sels) {
      const uint32_t* idx = objects_[ps.object].index.find(txn);
      ADYA_CHECK(idx != nullptr);
      ProcessPredicateObject(h, ps.reader, ps.pred_event, ps.object, ps.sel,
                             static_cast<std::ptrdiff_t>(*idx), out);
    }
  }
  // The committing transaction's own item reads.
  for (EventId rid : info.reads) {
    const VersionId& v = h.event(rid).version;
    TxnId writer = v.writer;
    if (!h.IsCommitted(writer)) {
      if (!h.IsAborted(writer)) {
        pending_reads_[writer].push_back(PendingRead{txn, v});
      }
      continue;
    }
    Dependency dep;
    dep.from = writer;
    dep.to = txn;
    dep.kind = DepKind::kWRItem;
    dep.object = v.object;
    dep.from_version = v;
    dep.to_version = v;
    EmitDelta(std::move(dep), out);
    ObjectState& os = objects_[v.object];
    const uint32_t* idx = os.index.find(writer);
    ADYA_CHECK_MSG(idx != nullptr,
                   "committed writer must appear in the version order");
    if (*idx + 1 < os.order.size()) {
      TxnId next = os.order[*idx + 1];
      Dependency rw;
      rw.from = txn;
      rw.to = next;
      rw.kind = DepKind::kRWItem;
      rw.object = v.object;
      rw.from_version = v;
      rw.to_version = VersionId{v.object, next, h.FinalSeq(next, v.object)};
      EmitDelta(std::move(rw), out);
    } else {
      os.tail_watchers.push_back(ObjectState::TailWatch{txn, v});
    }
  }
  // The committing transaction's own predicate reads.
  for (EventId pid : info.predicate_reads) {
    const Event& e = h.event(pid);
    FlatMap<ObjectId, VersionId> selected;
    for (const VersionId& v : e.vset) selected[v.object] = v;
    const std::vector<RelationId>& rels = h.predicate_relations(e.predicate);
    for (auto rel_it = rels.begin(); rel_it != rels.end(); ++rel_it) {
      if (std::find(rels.begin(), rel_it, *rel_it) != rel_it) continue;
      pred_reads_by_relation_[*rel_it].push_back(PredReadRef{txn, pid});
      for (ObjectId obj : objects_by_relation_[*rel_it]) {
        const VersionId* sel_hit = selected.find(obj);
        VersionId sel = sel_hit == nullptr ? InitVersion(obj) : *sel_hit;
        std::ptrdiff_t pos;
        if (sel.is_init()) {
          pos = -1;
        } else {
          if (!h.IsCommitted(sel.writer)) {
            if (!h.IsAborted(sel.writer)) {
              pending_selections_[sel.writer].push_back(
                  PendingSelection{txn, pid, obj, sel});
            }
            continue;  // unpositionable until the writer commits
          }
          const uint32_t* idx = objects_[obj].index.find(sel.writer);
          ADYA_CHECK(idx != nullptr);
          pos = static_cast<std::ptrdiff_t>(*idx);
        }
        ProcessPredicateObject(h, txn, pid, obj, sel, pos, out);
      }
    }
  }
  // Start-dependencies (PL-SI): all committed predecessors whose commit
  // precedes this begin, or just the transitive-reduction survivors.
  if (options_.include_start_edges) {
    EventId begin = info.begin_event;
    size_t preds = static_cast<size_t>(
        std::lower_bound(commit_events_.begin(), commit_events_.end(),
                         begin) -
        commit_events_.begin());
    if (preds > 0) {
      size_t first = 0;
      if (options_.reduced_start_edges) {
        first = static_cast<size_t>(
            std::lower_bound(commit_events_.begin(),
                             commit_events_.begin() + preds,
                             prefix_max_begin_[preds - 1]) -
            commit_events_.begin());
      }
      for (size_t i = first; i < preds; ++i) {
        Dependency dep;
        dep.from = by_commit_[i].txn;
        dep.to = txn;
        dep.kind = DepKind::kStart;
        EmitDelta(std::move(dep), out);
      }
    }
    by_commit_.push_back(CommittedSpan{begin, commit_event, txn});
    commit_events_.push_back(commit_event);
    prefix_max_begin_.push_back(
        prefix_max_begin_.empty()
            ? begin
            : std::max(prefix_max_begin_.back(), begin));
  }
}

void ConflictDelta::SeedPhantom(const History& h, TxnId txn) {
  SyncUniverse(h);
  const History::TxnInfo& info = h.txn_info(txn);
  for (const auto& [obj, writes] : info.writes) {
    for (size_t i = 0; i < writes.size(); ++i) {
      produced_[VersionId{obj, txn, static_cast<uint32_t>(i + 1)}] =
          writes[i];
    }
  }
  // Committing the phantom installs its seed versions and registers its
  // start-edge anchors. Phantoms have no reads, each object has at most one
  // seed install, and no predicate state is materialized yet, so no
  // dependency can come out of this commit — but any kept<-collected edges
  // a later retained commit derives from this state are harmless: with no
  // kept->collected edges (the GC frontier invariant), they can never lie
  // on a cycle of retained transactions.
  std::vector<Dependency> discard;
  CommitOf(h, txn, info.commit_event, discard);
}

std::vector<Dependency> ConflictDelta::OnEvent(const History& h, EventId id) {
  SyncUniverse(h);
  const Event& e = h.event(id);
  std::vector<Dependency> out;
  switch (e.type) {
    case EventType::kWrite:
      produced_[e.version] = id;
      break;
    case EventType::kCommit:
      CommitOf(h, e.txn, id, out);
      break;
    case EventType::kAbort:
      // Parked reads/selections of this writer's versions can never become
      // edges.
      pending_reads_.erase(e.txn);
      pending_selections_.erase(e.txn);
      break;
    default:
      break;
  }
  return out;
}

const std::vector<TxnId>& ConflictDelta::Order(ObjectId obj) const {
  static const std::vector<TxnId> kEmpty;
  if (obj >= objects_.size()) return kEmpty;
  return objects_[obj].order;
}

std::optional<size_t> ConflictDelta::OrderIndex(ObjectId obj,
                                                TxnId txn) const {
  if (obj >= objects_.size()) return std::nullopt;
  const uint32_t* idx = objects_[obj].index.find(txn);
  if (idx == nullptr) return std::nullopt;
  return *idx;
}

}  // namespace adya
