#include "core/conflicts.h"

#include <map>
#include <optional>

#include "common/str_util.h"
#include "history/format.h"

namespace adya {

std::string_view DepKindName(DepKind kind) {
  switch (kind) {
    case DepKind::kWW:
      return "ww";
    case DepKind::kWRItem:
      return "wr(item)";
    case DepKind::kWRPred:
      return "wr(pred)";
    case DepKind::kRWItem:
      return "rw(item)";
    case DepKind::kRWPred:
      return "rw(pred)";
    case DepKind::kStart:
      return "start";
  }
  return "?";
}

std::string Dependency::Describe(const History& h) const {
  std::string head = StrCat("T", from, " --", DepKindName(kind), "--> T", to,
                            ": ");
  switch (kind) {
    case DepKind::kWW:
      return StrCat(head, "T", from, " installed ",
                    FormatVersion(h, from_version), ", T", to,
                    " installed the next version ",
                    FormatVersion(h, to_version));
    case DepKind::kWRItem:
      return StrCat(head, "T", to, " read ", FormatVersion(h, from_version),
                    " installed by T", from);
    case DepKind::kWRPred:
      return StrCat(head, FormatVersion(h, from_version), " by T", from,
                    " was the latest change of the matches of T", to,
                    "'s read of predicate ", h.predicate_name(predicate));
    case DepKind::kRWItem:
      return StrCat(head, "T", from, " read ", FormatVersion(h, from_version),
                    ", T", to, " installed the next version ",
                    FormatVersion(h, to_version));
    case DepKind::kRWPred:
      return StrCat(head, "T", to, " installed ",
                    FormatVersion(h, to_version),
                    ", changing the matches of T", from,
                    "'s read of predicate ", h.predicate_name(predicate),
                    " (which selected ", FormatVersion(h, from_version), ")");
    case DepKind::kStart:
      return StrCat(head, "T", from, " committed before T", to, " started");
  }
  return head;
}

namespace {

/// Computes all direct conflicts for one finalized history.
class Analyzer {
 public:
  Analyzer(const History& h, const ConflictOptions& options)
      : h_(h), options_(options) {
    ADYA_CHECK_MSG(h.finalized(), "ComputeDependencies needs Finalize()");
  }

  std::vector<Dependency> Run() {
    WriteDependencies();
    ItemReadAndAntiDependencies();
    PredicateDependencies();
    if (options_.include_start_edges) StartDependencies();
    return std::move(out_);
  }

 private:
  void Emit(Dependency dep) {
    if (dep.from == dep.to) return;  // conflicts relate distinct transactions
    out_.push_back(std::move(dep));
  }

  // Definition 6: Tj directly write-depends on Ti if Ti installs x_i and Tj
  // installs x's next version.
  void WriteDependencies() {
    for (ObjectId obj = 0; obj < h_.object_count(); ++obj) {
      const std::vector<TxnId>& order = h_.VersionOrder(obj);
      for (size_t i = 0; i + 1 < order.size(); ++i) {
        Dependency dep;
        dep.from = order[i];
        dep.to = order[i + 1];
        dep.kind = DepKind::kWW;
        dep.object = obj;
        dep.from_version = *h_.InstalledVersion(order[i], obj);
        dep.to_version = *h_.InstalledVersion(order[i + 1], obj);
        Emit(std::move(dep));
      }
    }
  }

  // Definitions 3 and 5, item cases. One pass over read events of committed
  // readers; versions written by uncommitted/aborted transactions have no
  // position in the version order and yield no edges (G1a covers them).
  void ItemReadAndAntiDependencies() {
    for (const Event& e : h_.events()) {
      if (e.type != EventType::kRead || !h_.IsCommitted(e.txn)) continue;
      const VersionId& v = e.version;
      if (!h_.IsCommitted(v.writer)) continue;
      // Ti --wr--> Tj. For a read of an intermediate version of a committed
      // transaction (a G1b violation) we still attribute the dependency to
      // the writer; this only affects histories already outside PL-2.
      {
        Dependency dep;
        dep.from = v.writer;
        dep.to = e.txn;
        dep.kind = DepKind::kWRItem;
        dep.object = v.object;
        dep.from_version = v;
        dep.to_version = v;
        Emit(std::move(dep));
      }
      // Tj --rw--> (installer of the next version after the one read).
      std::optional<size_t> pos = h_.OrderIndex(v.object, v.writer);
      ADYA_CHECK_MSG(pos.has_value(),
                     "committed writer must appear in the version order");
      const std::vector<TxnId>& order = h_.VersionOrder(v.object);
      if (*pos + 1 < order.size()) {
        Dependency dep;
        dep.from = e.txn;
        dep.to = order[*pos + 1];
        dep.kind = DepKind::kRWItem;
        dep.object = v.object;
        dep.from_version = v;
        dep.to_version = *h_.InstalledVersion(order[*pos + 1], v.object);
        Emit(std::move(dep));
      }
    }
  }

  // Match flags of an object's committed versions against a predicate,
  // aligned with the version order; cached per (object, predicate).
  const std::vector<bool>& MatchFlags(ObjectId obj, PredicateId pred) {
    auto key = std::make_pair(obj, pred);
    auto it = match_cache_.find(key);
    if (it != match_cache_.end()) return it->second;
    const std::vector<TxnId>& order = h_.VersionOrder(obj);
    std::vector<bool> flags;
    flags.reserve(order.size());
    for (TxnId txn : order) {
      flags.push_back(h_.Matches(*h_.InstalledVersion(txn, obj), pred));
    }
    return match_cache_.emplace(key, std::move(flags)).first->second;
  }

  // Definition 2: version i changes the matches if its match status differs
  // from its immediate predecessor's (x_init, which never matches, precedes
  // the first committed version).
  bool ChangesMatches(const std::vector<bool>& flags, size_t i) const {
    bool prev = (i == 0) ? false : flags[i - 1];
    return flags[i] != prev;
  }

  // Definitions 3 (predicate case), 4 and 5 (predicate case).
  void PredicateDependencies() {
    for (const Event& e : h_.events()) {
      if (e.type != EventType::kPredicateRead || !h_.IsCommitted(e.txn)) {
        continue;
      }
      std::map<ObjectId, VersionId> selected;
      for (const VersionId& v : e.vset) selected[v.object] = v;
      const std::vector<RelationId>& rels = h_.predicate_relations(e.predicate);
      for (ObjectId obj = 0; obj < h_.object_count(); ++obj) {
        bool in_relations = false;
        for (RelationId r : rels) in_relations |= (h_.object_relation(obj) == r);
        if (!in_relations) continue;
        // Position of the selected version in the version order; the
        // implicit selection is x_init (position "before index 0").
        auto sel_it = selected.find(obj);
        VersionId sel =
            sel_it == selected.end() ? InitVersion(obj) : sel_it->second;
        ptrdiff_t pos;
        if (sel.is_init()) {
          pos = -1;
        } else {
          if (!h_.IsCommitted(sel.writer)) continue;  // unpositionable
          std::optional<size_t> idx = h_.OrderIndex(obj, sel.writer);
          ADYA_CHECK(idx.has_value());
          pos = static_cast<ptrdiff_t>(*idx);
        }
        const std::vector<bool>& flags = MatchFlags(obj, e.predicate);
        const std::vector<TxnId>& order = h_.VersionOrder(obj);
        // wr(pred): the latest change at or before the selected version.
        for (ptrdiff_t j = pos; j >= 0; --j) {
          if (!ChangesMatches(flags, static_cast<size_t>(j))) continue;
          Dependency dep;
          dep.from = order[static_cast<size_t>(j)];
          dep.to = e.txn;
          dep.kind = DepKind::kWRPred;
          dep.object = obj;
          dep.from_version =
              *h_.InstalledVersion(order[static_cast<size_t>(j)], obj);
          dep.to_version = sel;
          dep.predicate = e.predicate;
          dep.is_predicate = true;
          Emit(std::move(dep));
          break;
        }
        // rw(pred): every later change overwrites this predicate read
        // (Definition 4).
        for (size_t j = static_cast<size_t>(pos + 1); j < order.size(); ++j) {
          if (!ChangesMatches(flags, j)) continue;
          Dependency dep;
          dep.from = e.txn;
          dep.to = order[j];
          dep.kind = DepKind::kRWPred;
          dep.object = obj;
          dep.from_version = sel;
          dep.to_version = *h_.InstalledVersion(order[j], obj);
          dep.predicate = e.predicate;
          dep.is_predicate = true;
          Emit(std::move(dep));
        }
      }
    }
  }

  // Thesis start-depends (used by the PL-SI check): Tj start-depends on Ti
  // iff Ti's commit precedes Tj's start.
  void StartDependencies() {
    std::vector<TxnId> committed = h_.CommittedTransactions();
    for (TxnId from : committed) {
      EventId commit = h_.txn_info(from).commit_event;
      for (TxnId to : committed) {
        if (from == to) continue;
        if (commit < h_.txn_info(to).begin_event) {
          Dependency dep;
          dep.from = from;
          dep.to = to;
          dep.kind = DepKind::kStart;
          Emit(std::move(dep));
        }
      }
    }
  }

  const History& h_;
  ConflictOptions options_;
  std::vector<Dependency> out_;
  std::map<std::pair<ObjectId, PredicateId>, std::vector<bool>> match_cache_;
};

}  // namespace

std::vector<Dependency> ComputeDependencies(const History& h,
                                            const ConflictOptions& options) {
  return Analyzer(h, options).Run();
}

}  // namespace adya
