#include "core/checker_api.h"

#include <charconv>
#include <cstdint>

#include "common/check.h"
#include "common/str_util.h"
#include "core/incremental.h"
#include "core/parallel.h"

namespace adya {
namespace {

bool ParseIntValue(std::string_view text, int* out) {
  int v = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  *out = v;
  return true;
}

bool ParseU64Value(std::string_view text, uint64_t* out) {
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  *out = v;
  return true;
}

/// Splits "--key=value"; returns true and fills key/value on a match.
bool SplitFlag(std::string_view arg, std::string_view* key,
               std::string_view* value) {
  size_t eq = arg.find('=');
  if (eq == std::string_view::npos) return false;
  *key = arg.substr(0, eq);
  *value = arg.substr(eq + 1);
  return true;
}

}  // namespace

std::string_view CheckModeName(CheckMode mode) {
  switch (mode) {
    case CheckMode::kSerial:
      return "serial";
    case CheckMode::kParallel:
      return "parallel";
    case CheckMode::kIncremental:
      return "incremental";
  }
  return "?";
}

Status CheckerOptions::Validate() const {
  if (threads < 1) {
    return Status::InvalidArgument(
        StrCat("CheckerOptions.threads must be >= 1, got ", threads));
  }
  if (certify_batch < 1) {
    return Status::InvalidArgument(
        StrCat("CheckerOptions.certify_batch must be >= 1, got ",
               certify_batch));
  }
  if (gc.enabled && gc.watermark_interval < 1) {
    return Status::InvalidArgument(
        "CheckerOptions.gc.watermark_interval must be >= 1");
  }
  if (gc.enabled && gc.min_window_events < 1) {
    return Status::InvalidArgument(
        "CheckerOptions.gc.min_window_events must be >= 1");
  }
  return Status::OK();
}

bool CheckerOptions::ParseFlag(std::string_view arg, std::string* error) {
  error->clear();
  if (arg == "--incremental") {
    mode = CheckMode::kIncremental;
    return true;
  }
  std::string_view key, value;
  if (!SplitFlag(arg, &key, &value)) return false;
  if (key == "--check-mode") {
    if (value == "serial") {
      mode = CheckMode::kSerial;
    } else if (value == "parallel") {
      mode = CheckMode::kParallel;
    } else if (value == "incremental") {
      mode = CheckMode::kIncremental;
    } else {
      *error = StrCat("--check-mode must be serial|parallel|incremental, got ",
                      value);
    }
    return true;
  }
  if (key == "--check-threads") {
    int v = 0;
    if (!ParseIntValue(value, &v) || v < 1) {
      *error = StrCat("--check-threads wants an integer >= 1, got ", value);
      return true;
    }
    threads = v;
    if (v > 1 && mode == CheckMode::kSerial) mode = CheckMode::kParallel;
    return true;
  }
  if (key == "--certify-batch") {
    int v = 0;
    if (!ParseIntValue(value, &v) || v < 1) {
      *error = StrCat("--certify-batch wants an integer >= 1, got ", value);
      return true;
    }
    certify_batch = v;
    return true;
  }
  if (key == "--gc-watermark") {
    uint64_t v = 0;
    if (!ParseU64Value(value, &v) || v < 1) {
      *error = StrCat("--gc-watermark wants an integer >= 1, got ", value);
      return true;
    }
    gc.enabled = true;
    gc.watermark_interval = v;
    return true;
  }
  if (key == "--input-format") {
    if (value.empty()) {
      *error = "--input-format wants a format name (or auto)";
      return true;
    }
    input_format = std::string(value);
    return true;
  }
  if (key == "--gc-min-window") {
    uint64_t v = 0;
    if (!ParseU64Value(value, &v) || v < 1) {
      *error = StrCat("--gc-min-window wants an integer >= 1, got ", value);
      return true;
    }
    gc.min_window_events = v;
    return true;
  }
  return false;
}

Result<CheckerOptions> CheckerOptions::FromFlags(int argc,
                                                 const char* const* argv) {
  CheckerOptions options;
  std::string error;
  for (int i = 1; i < argc; ++i) {
    if (options.ParseFlag(argv[i], &error) && !error.empty()) {
      return Status::InvalidArgument(error);
    }
  }
  Status valid = options.Validate();
  if (!valid.ok()) return valid;
  return options;
}

Checker::Checker(const History& h, const CheckerOptions& options)
    : Checker(h, options, nullptr) {}

Checker::Checker(const History& h, const CheckerOptions& options,
                 ThreadPool* pool)
    : history_(&h), options_(options) {
  Status valid = options_.Validate();
  ADYA_CHECK_MSG(valid.ok(), valid);
  // One stats pointer rides through every layer on ConflictOptions.
  options_.conflicts.stats = options_.stats;
  switch (options_.mode) {
    case CheckMode::kSerial:
      serial_ =
          std::make_unique<PhenomenaChecker>(h, options_.conflicts, pool);
      break;
    case CheckMode::kParallel: {
      CheckOptions internal;
      internal.conflicts = options_.conflicts;
      internal.threads = options_.threads;
      parallel_ = pool != nullptr
                      ? std::make_unique<ParallelChecker>(h, internal, pool)
                      : std::make_unique<ParallelChecker>(h, internal);
      break;
    }
    case CheckMode::kIncremental:
      incremental_ = std::make_unique<IncrementalChecker>(
          h, options_.conflicts, pool);
      break;
  }
}

Checker::~Checker() = default;

CheckReport Checker::Check(IsolationLevel level) const {
  obs::StatsRegistry* stats = options_.stats;
  LevelCheckResult result;
  {
    ADYA_TIMED_PHASE(stats, "checker.check_us");
    if (serial_ != nullptr) {
      result = CheckLevel(*serial_, level);
    } else if (parallel_ != nullptr) {
      result = CheckLevel(*parallel_, level);
    } else {
      result = incremental_->Check(level);
    }
  }
  CheckReport report;
  report.level = result.level;
  report.satisfied = result.satisfied;
  report.violations = std::move(result.violations);
  report.mode = options_.mode;
  if (stats != nullptr) {
    stats->counter("checker.checks").Add();
    report.stats = stats->Snapshot();
  }
  return report;
}

std::optional<Violation> Checker::CheckPhenomenon(Phenomenon p) const {
  if (serial_ != nullptr) return serial_->Check(p);
  if (parallel_ != nullptr) return parallel_->Check(p);
  return incremental_->CheckPhenomenon(p);
}

std::vector<Violation> Checker::CheckAll() const {
  if (serial_ != nullptr) return serial_->CheckAll();
  if (parallel_ != nullptr) return parallel_->CheckAll();
  return incremental_->CheckAll();
}

CheckReport Check(const History& h, IsolationLevel level,
                  const CheckerOptions& options) {
  return Checker(h, options).Check(level);
}

}  // namespace adya
