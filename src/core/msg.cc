#include "core/msg.h"

#include <algorithm>

#include "common/str_util.h"
#include "core/phenomena.h"

namespace adya {
namespace {

bool IsAnsiLevel(IsolationLevel level) {
  return level == IsolationLevel::kPL1 || level == IsolationLevel::kPL2 ||
         level == IsolationLevel::kPL299 || level == IsolationLevel::kPL3;
}

bool AtLeastPL2(IsolationLevel level) { return level != IsolationLevel::kPL1; }

/// Is this conflict edge relevant in the MSG?
bool EdgeRelevant(const History& h, const Dependency& dep) {
  IsolationLevel from_level = h.txn_info(dep.from).level;
  IsolationLevel to_level = h.txn_info(dep.to).level;
  (void)from_level;
  switch (dep.kind) {
    case DepKind::kWW:
      return true;
    case DepKind::kWRItem:
    case DepKind::kWRPred:
      return AtLeastPL2(to_level);
    case DepKind::kRWItem:
      return h.txn_info(dep.from).level == IsolationLevel::kPL3 ||
             h.txn_info(dep.from).level == IsolationLevel::kPL299;
    case DepKind::kRWPred:
      return h.txn_info(dep.from).level == IsolationLevel::kPL3;
    case DepKind::kStart:
      return false;
  }
  return false;
}

}  // namespace

Result<Msg> Msg::Build(const History& h) {
  for (TxnId txn : h.Transactions()) {
    if (!IsAnsiLevel(h.txn_info(txn).level)) {
      return Status::InvalidArgument(
          StrCat("MSG is defined for the ANSI chain only; T", txn,
                 " runs at ", IsolationLevelName(h.txn_info(txn).level)));
    }
  }
  Msg msg;
  for (TxnId txn : h.CommittedTransactions()) {
    msg.txn_nodes_[txn] = static_cast<graph::NodeId>(msg.node_txns_.size());
    msg.node_txns_.push_back(txn);
  }
  msg.graph_.Resize(msg.node_txns_.size());

  std::map<std::tuple<TxnId, TxnId, DepKind>, std::vector<Dependency>> merged;
  std::vector<std::tuple<TxnId, TxnId, DepKind>> keys;
  for (Dependency& dep : ComputeDependencies(h)) {
    if (!EdgeRelevant(h, dep)) continue;
    auto key = std::make_tuple(dep.from, dep.to, dep.kind);
    auto [it, inserted] = merged.try_emplace(key);
    if (inserted) keys.push_back(key);
    it->second.push_back(std::move(dep));
  }
  for (const auto& key : keys) {
    const auto& [from, to, kind] = key;
    msg.graph_.AddEdge(msg.txn_nodes_.at(from), msg.txn_nodes_.at(to),
                       Bit(kind));
    msg.edge_reasons_.push_back(std::move(merged.at(key)));
    msg.edge_kinds_.push_back(kind);
  }
  return msg;
}

std::string Msg::EdgeSummary() const {
  std::vector<graph::EdgeId> ids(graph_.edge_count());
  for (graph::EdgeId i = 0; i < ids.size(); ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(), [this](graph::EdgeId a, graph::EdgeId b) {
    const auto& ea = graph_.edge(a);
    const auto& eb = graph_.edge(b);
    return std::make_tuple(txn_of(ea.from), txn_of(ea.to),
                           static_cast<int>(edge_kinds_[a])) <
           std::make_tuple(txn_of(eb.from), txn_of(eb.to),
                           static_cast<int>(edge_kinds_[b]));
  });
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (graph::EdgeId id : ids) {
    const auto& e = graph_.edge(id);
    parts.push_back(StrCat("T", txn_of(e.from), " --",
                           DepKindName(edge_kinds_[id]), "--> T",
                           txn_of(e.to)));
  }
  return StrJoin(parts, ", ");
}

Result<MixingCheckResult> CheckMixingCorrect(const History& h) {
  ADYA_ASSIGN_OR_RETURN(Msg msg, Msg::Build(h));
  MixingCheckResult result;
  auto cycle =
      graph::FindCycleWithRequiredKind(msg.graph(), ~graph::KindMask{0},
                                       ~graph::KindMask{0});
  if (cycle.has_value()) {
    std::vector<std::string> parts;
    for (graph::EdgeId e : cycle->edges) {
      const auto& edge = msg.graph().edge(e);
      parts.push_back(StrCat("T", msg.txn_of(edge.from), " --",
                             DepKindName(msg.kind_of(e)), "--> T",
                             msg.txn_of(edge.to)));
    }
    result.problems.push_back(
        StrCat("MSG cycle: ", StrJoin(parts, ", ")));
  }
  PhenomenaChecker checker(h);
  TxnFilter at_least_pl2 = [&h](TxnId txn) {
    return AtLeastPL2(h.txn_info(txn).level);
  };
  if (auto v = checker.CheckG1a(at_least_pl2)) {
    result.problems.push_back(v->description);
  }
  if (auto v = checker.CheckG1b(at_least_pl2)) {
    result.problems.push_back(v->description);
  }
  result.mixing_correct = result.problems.empty();
  return result;
}

}  // namespace adya
