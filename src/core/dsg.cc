#include "core/dsg.h"

#include <algorithm>

#include "common/str_util.h"
#include "graph/dot.h"

namespace adya {

Dsg::Dsg(const History& h, const ConflictOptions& options)
    : Dsg(h, options, nullptr) {}

Dsg::Dsg(const History& h, const ConflictOptions& options, ThreadPool* pool)
    : history_(&h) {
  for (TxnId txn : h.CommittedTransactions()) {
    txn_nodes_[txn] = static_cast<graph::NodeId>(node_txns_.size());
    node_txns_.push_back(txn);
  }
  graph_.Resize(node_txns_.size());

  // Merge conflicts into one edge per (from, to, kind), in deterministic
  // order (conflicts come out of ComputeDependencies in event order).
  std::map<std::tuple<TxnId, TxnId, DepKind>, std::vector<Dependency>> merged;
  std::vector<std::tuple<TxnId, TxnId, DepKind>> keys;  // insertion order
  for (Dependency& dep : ComputeDependencies(h, options, pool)) {
    auto key = std::make_tuple(dep.from, dep.to, dep.kind);
    auto [it, inserted] = merged.try_emplace(key);
    if (inserted) keys.push_back(key);
    it->second.push_back(std::move(dep));
  }
  for (const auto& key : keys) {
    const auto& [from, to, kind] = key;
    graph_.AddEdge(txn_nodes_.at(from), txn_nodes_.at(to), Bit(kind));
    edge_reasons_.push_back(std::move(merged.at(key)));
    edge_kinds_.push_back(kind);
  }
}

std::optional<graph::NodeId> Dsg::node_of(TxnId txn) const {
  auto it = txn_nodes_.find(txn);
  if (it == txn_nodes_.end()) return std::nullopt;
  return it->second;
}

std::string Dsg::DescribeEdge(graph::EdgeId edge) const {
  const graph::Digraph::Edge& e = graph_.edge(edge);
  std::string out = StrCat("T", txn_of(e.from), " --",
                           DepKindName(edge_kinds_[edge]), "--> T",
                           txn_of(e.to));
  for (const Dependency& dep : edge_reasons_[edge]) {
    out += StrCat("\n    ", dep.Describe(*history_));
  }
  return out;
}

std::string Dsg::DescribeCycle(const graph::Cycle& cycle) const {
  std::string out = "cycle:";
  for (graph::EdgeId edge : cycle.edges) {
    out += StrCat("\n  ", DescribeEdge(edge));
  }
  return out;
}

std::string Dsg::EdgeSummary() const {
  // Sort by (from txn, to txn, kind) for a stable golden representation.
  std::vector<graph::EdgeId> ids(graph_.edge_count());
  for (graph::EdgeId i = 0; i < ids.size(); ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(), [this](graph::EdgeId a, graph::EdgeId b) {
    const auto& ea = graph_.edge(a);
    const auto& eb = graph_.edge(b);
    auto ka = std::make_tuple(txn_of(ea.from), txn_of(ea.to),
                              static_cast<int>(edge_kinds_[a]));
    auto kb = std::make_tuple(txn_of(eb.from), txn_of(eb.to),
                              static_cast<int>(edge_kinds_[b]));
    return ka < kb;
  });
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (graph::EdgeId id : ids) {
    const auto& e = graph_.edge(id);
    parts.push_back(StrCat("T", txn_of(e.from), " --",
                           DepKindName(edge_kinds_[id]), "--> T",
                           txn_of(e.to)));
  }
  return StrJoin(parts, ", ");
}

std::string Dsg::ToDot() const {
  return graph::ToDot(
      graph_,
      [this](graph::NodeId n) { return StrCat("T", txn_of(n)); },
      [this](graph::EdgeId e) {
        return std::string(DepKindName(edge_kinds_[e]));
      });
}

std::optional<std::vector<TxnId>> Dsg::SerializationOrder() const {
  auto order = graph::TopologicalOrder(graph_, kConflictMask);
  if (!order.has_value()) return std::nullopt;
  std::vector<TxnId> txns;
  txns.reserve(order->size());
  for (graph::NodeId n : *order) txns.push_back(txn_of(n));
  return txns;
}

}  // namespace adya
