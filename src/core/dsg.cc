#include "core/dsg.h"

#include <algorithm>

#include "common/flat_hash.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "graph/dot.h"

namespace adya {

namespace {

// Number of DepKind values; per-(from,to) edge-merge slots are indexed by
// the kind so one hash probe covers all parallel edges of a pair.
constexpr int kKindCount = static_cast<int>(DepKind::kStart) + 1;

struct EdgeSlots {
  uint32_t group[kKindCount];
  EdgeSlots() {
    for (int k = 0; k < kKindCount; ++k) group[k] = UINT32_MAX;
  }
};

}  // namespace

Dsg::Dsg(const History& h, const ConflictOptions& options)
    : Dsg(h, options, nullptr) {}

Dsg::Dsg(const History& h, const ConflictOptions& options, ThreadPool* pool)
    : Dsg(h, ComputeDependencies(h, options, pool), pool) {}

Dsg::Dsg(const History& h, std::vector<Dependency> deps)
    : Dsg(h, std::move(deps), nullptr) {}

Dsg::Dsg(const History& h, std::vector<Dependency> deps, ThreadPool* pool)
    : history_(&h) {
  const DenseTxnIndex& dense = h.dense();
  const size_t n_deps = deps.size();

  // Pre-pass: translate TxnIds to dense node ids. Two hash probes per
  // dependency — the hot part of the merge — and each lookup is
  // independent, so this shards over contiguous dependency ranges with no
  // reduction needed at all.
  std::vector<graph::NodeId> dep_from(n_deps), dep_to(n_deps);
  constexpr size_t kParallelTranslateMinDeps = size_t{1} << 14;
  size_t shards =
      pool == nullptr ? 1
                      : std::min<size_t>(static_cast<size_t>(pool->threads()),
                                         n_deps / kParallelTranslateMinDeps);
  if (shards > 1) {
    const size_t chunk = (n_deps + shards - 1) / shards;
    pool->ParallelFor(shards, [&](size_t s) {
      const size_t lo = s * chunk, hi = std::min(n_deps, lo + chunk);
      for (size_t i = lo; i < hi; ++i) {
        dep_from[i] = *dense.CommittedIndexOf(deps[i].from);
        dep_to[i] = *dense.CommittedIndexOf(deps[i].to);
      }
    });
  } else {
    for (size_t i = 0; i < n_deps; ++i) {
      dep_from[i] = *dense.CommittedIndexOf(deps[i].from);
      dep_to[i] = *dense.CommittedIndexOf(deps[i].to);
    }
  }

  // Merge conflicts into one edge per (from, to, kind), in deterministic
  // order (conflicts come out of ComputeDependencies in event order; edge
  // ids are assigned in first-appearance order of the (from, to, kind)
  // key, exactly as the ordered-map implementation this replaces). Keys
  // pack the two dense node ids; the kind picks a slot within the entry.
  // This loop defines the edge ids and stays serial at any thread count.
  FlatMap<uint64_t, EdgeSlots> merged;
  // Parallel arrays per merged edge group, in insertion order.
  std::vector<graph::NodeId> group_from;
  std::vector<graph::NodeId> group_to;
  for (size_t i = 0; i < n_deps; ++i) {
    Dependency& dep = deps[i];
    graph::NodeId from = dep_from[i];
    graph::NodeId to = dep_to[i];
    uint32_t& slot =
        merged[PackKey(from, to)].group[static_cast<int>(dep.kind)];
    if (slot == UINT32_MAX) {
      slot = static_cast<uint32_t>(edge_reasons_.size());
      group_from.push_back(from);
      group_to.push_back(to);
      edge_kinds_.push_back(dep.kind);
      edge_reasons_.emplace_back();
    }
    edge_reasons_[slot].push_back(std::move(dep));
  }
  // Assemble the frozen graph directly from the group arrays (edge id ==
  // group insertion order, same ids AddEdge would assign) with the CSR
  // passes sharded over the pool — byte-identical to the
  // Resize/AddEdge/Freeze path this replaces, without the per-node build
  // vectors.
  std::vector<graph::Digraph::Edge> edges(edge_kinds_.size());
  for (uint32_t i = 0; i < edge_kinds_.size(); ++i) {
    edges[i] =
        graph::Digraph::Edge{group_from[i], group_to[i], Bit(edge_kinds_[i])};
  }
  graph_ = graph::Digraph::FromEdges(dense.committed_count(), std::move(edges),
                                     pool);
}

size_t Dsg::node_count() const {
  return history_->dense().committed_count();
}

TxnId Dsg::txn_of(graph::NodeId node) const {
  return history_->dense().CommittedTxnOf(node);
}

std::optional<graph::NodeId> Dsg::node_of(TxnId txn) const {
  return history_->dense().CommittedIndexOf(txn);
}

std::string Dsg::DescribeEdge(graph::EdgeId edge) const {
  const graph::Digraph::Edge& e = graph_.edge(edge);
  std::string out = StrCat("T", txn_of(e.from), " --",
                           DepKindName(edge_kinds_[edge]), "--> T",
                           txn_of(e.to));
  for (const Dependency& dep : edge_reasons_[edge]) {
    out += StrCat("\n    ", dep.Describe(*history_));
  }
  return out;
}

std::string Dsg::DescribeCycle(const graph::Cycle& cycle) const {
  std::string out = "cycle:";
  for (graph::EdgeId edge : cycle.edges) {
    out += StrCat("\n  ", DescribeEdge(edge));
  }
  return out;
}

std::string Dsg::EdgeSummary() const {
  // Sort by (from txn, to txn, kind) for a stable golden representation.
  std::vector<graph::EdgeId> ids(graph_.edge_count());
  for (graph::EdgeId i = 0; i < ids.size(); ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(), [this](graph::EdgeId a, graph::EdgeId b) {
    const auto& ea = graph_.edge(a);
    const auto& eb = graph_.edge(b);
    auto ka = std::make_tuple(txn_of(ea.from), txn_of(ea.to),
                              static_cast<int>(edge_kinds_[a]));
    auto kb = std::make_tuple(txn_of(eb.from), txn_of(eb.to),
                              static_cast<int>(edge_kinds_[b]));
    return ka < kb;
  });
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (graph::EdgeId id : ids) {
    const auto& e = graph_.edge(id);
    parts.push_back(StrCat("T", txn_of(e.from), " --",
                           DepKindName(edge_kinds_[id]), "--> T",
                           txn_of(e.to)));
  }
  return StrJoin(parts, ", ");
}

std::string Dsg::ToDot() const {
  return graph::ToDot(
      graph_,
      [this](graph::NodeId n) { return StrCat("T", txn_of(n)); },
      [this](graph::EdgeId e) {
        return std::string(DepKindName(edge_kinds_[e]));
      });
}

std::optional<std::vector<TxnId>> Dsg::SerializationOrder() const {
  auto order = graph::TopologicalOrder(graph_, kConflictMask);
  if (!order.has_value()) return std::nullopt;
  std::vector<TxnId> txns;
  txns.reserve(order->size());
  for (graph::NodeId n : *order) txns.push_back(txn_of(n));
  return txns;
}

}  // namespace adya
