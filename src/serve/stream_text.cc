#include "serve/stream_text.h"

#include <set>
#include <sstream>

#include "common/str_util.h"
#include "history/format.h"

namespace adya::serve {

namespace {

std::string LetterSuffix(size_t i) {
  std::string out;
  do {
    out += static_cast<char>('a' + i % 26);
    i /= 26;
  } while (i > 0);
  return out;
}

/// The notation's names are letters and underscores only (digits belong to
/// the version token's writer id, '#' starts a comment), but recorded
/// names are often "P1" or a reinsertion's "ke#2". Streamed text renames
/// every predicate, and every object whose recorded name the notation
/// cannot carry.
std::string StreamPredicateName(PredicateId p) {
  return StrCat("P", LetterSuffix(p));
}

bool NotationSafeName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

/// Wire name per object: the recorded name when the notation can carry it,
/// else "o" + letter suffix (picked to collide with nothing kept).
std::vector<std::string> BuildObjectNames(const History& h) {
  std::vector<std::string> names(h.object_count());
  std::set<std::string> taken;
  for (ObjectId o = 0; o < h.object_count(); ++o) {
    const std::string& name = h.object_name(o);
    if (NotationSafeName(name)) {
      names[o] = name;
      taken.insert(name);
    }
  }
  size_t next = 0;
  for (ObjectId o = 0; o < h.object_count(); ++o) {
    if (!names[o].empty()) continue;
    std::string fresh;
    do {
      fresh = StrCat("o", LetterSuffix(next++));
    } while (taken.count(fresh) > 0);
    names[o] = fresh;
    taken.insert(fresh);
  }
  return names;
}

/// FormatVersion with the sanitized object name.
std::string StreamVersion(const History& h,
                          const std::vector<std::string>& names,
                          const VersionId& v) {
  const std::string& name = names[v.object];
  if (v.is_init()) return StrCat(name, "init");
  if (v.seq <= 1 && h.FinalSeq(v.writer, v.object) <= 1) {
    return StrCat(name, v.writer);
  }
  return StrCat(name, v.writer, ".", v.seq);
}

/// FormatEvent with sanitized object and predicate names.
std::string FormatStreamEvent(const History& h,
                              const std::vector<std::string>& names,
                              const Event& e) {
  switch (e.type) {
    case EventType::kRead: {
      std::string out =
          StrCat("r", e.txn, "(", StreamVersion(h, names, e.version));
      if (!e.row.empty()) out += StrCat(", ", e.row.ToString());
      return out + ")";
    }
    case EventType::kWrite: {
      std::string out =
          StrCat("w", e.txn, "(", StreamVersion(h, names, e.version));
      if (e.written_kind == VersionKind::kDead) {
        out += ", dead";
      } else if (!e.row.empty()) {
        out += StrCat(", ", e.row.ToString());
      }
      return out + ")";
    }
    case EventType::kPredicateRead: {
      std::string out =
          StrCat("r", e.txn, "(", StreamPredicateName(e.predicate), ":");
      bool first = true;
      for (const VersionId& v : e.vset) {
        out += first ? " " : ", ";
        first = false;
        out += StreamVersion(h, names, v);
      }
      return out + ")";
    }
    default:
      return FormatEvent(h, e);
  }
}

}  // namespace

StreamText FormatForStream(const History& h, size_t events_per_batch) {
  if (events_per_batch == 0) events_per_batch = 1;
  StreamText out;
  std::vector<std::string> names = BuildObjectNames(h);
  std::ostringstream decls;
  for (RelationId r = 0; r < h.relation_count(); ++r) {
    if (h.relation_name(r) != "R") {
      decls << "relation " << h.relation_name(r) << ";\n";
    }
  }
  for (ObjectId o = 0; o < h.object_count(); ++o) {
    RelationId r = h.object_relation(o);
    if (h.relation_name(r) != "R") {
      decls << "object " << names[o] << " in " << h.relation_name(r) << ";\n";
    }
  }
  for (PredicateId p = 0; p < h.predicate_count(); ++p) {
    decls << "pred " << StreamPredicateName(p) << " on ";
    bool first = true;
    for (RelationId r : h.predicate_relations(p)) {
      if (!first) decls << ", ";
      first = false;
      decls << h.relation_name(r);
    }
    decls << ": " << h.predicate(p).Description() << ";\n";
  }
  for (TxnId txn : h.Transactions()) {
    IsolationLevel level = h.txn_info(txn).level;
    if (level != IsolationLevel::kPL3) {
      decls << "level " << txn << " " << IsolationLevelName(level) << ";\n";
    }
  }
  out.decls = decls.str();

  std::string batch;
  size_t in_batch = 0;
  for (const Event& e : h.events()) {
    if (!batch.empty()) batch += ' ';
    batch += FormatStreamEvent(h, names, e);
    if (++in_batch >= events_per_batch) {
      batch += '\n';
      out.batches.push_back(std::move(batch));
      batch.clear();
      in_batch = 0;
    }
  }
  if (!batch.empty()) {
    batch += '\n';
    out.batches.push_back(std::move(batch));
  }
  return out;
}

SyntheticLoad::SyntheticLoad(uint64_t seed, int objects, int events_per_batch,
                             int write_skew_every)
    : rng_(seed),
      events_per_batch_(events_per_batch < 4 ? 4 : events_per_batch),
      write_skew_every_(write_skew_every),
      last_writer_(static_cast<size_t>(objects < 2 ? 2 : objects), 0) {}

std::string SyntheticLoad::ObjectName(size_t index) const {
  // Letters only: version tokens append the writer's txn id, so an object
  // name must not end in a digit.
  std::string name = "k";
  size_t i = index;
  do {
    name += static_cast<char>('a' + i % 26);
    i /= 26;
  } while (i > 0);
  return name;
}

std::string SyntheticLoad::CurrentVersion(size_t index) const {
  uint64_t writer = last_writer_[index];
  if (writer == 0) return StrCat(ObjectName(index), "init");
  return StrCat(ObjectName(index), writer);
}

std::string SyntheticLoad::NextBatch() {
  ++batches_;
  std::string out;
  size_t events = 0;
  if (next_txn_ == 1) {
    // Install every object first: the init version is unborn and cannot be
    // read, so later transactions always have a committed version to see.
    uint64_t t = next_txn_++;
    for (size_t obj = 0; obj < last_writer_.size(); ++obj) {
      out += StrCat("w", t, "(", ObjectName(obj), t, ", ",
                    rng_.NextBelow(1000), ") ");
      ++events;
    }
    out += StrCat("c", t, "\n");
    ++events;
    for (size_t obj = 0; obj < last_writer_.size(); ++obj) {
      last_writer_[obj] = t;
    }
  }
  if (write_skew_every_ > 0 && batches_ % write_skew_every_ == 0) {
    // The canonical write-skew interleaving on two distinct objects.
    size_t i = rng_.NextBelow(last_writer_.size());
    size_t j = (i + 1 + rng_.NextBelow(last_writer_.size() - 1)) %
               last_writer_.size();
    uint64_t t1 = next_txn_++;
    uint64_t t2 = next_txn_++;
    out += StrCat("b", t1, " b", t2, " r", t1, "(", CurrentVersion(i), ") r",
                  t1, "(", CurrentVersion(j), ") r", t2, "(",
                  CurrentVersion(i), ") r", t2, "(", CurrentVersion(j), ") w",
                  t1, "(", ObjectName(i), t1, ", ", rng_.NextBelow(1000),
                  ") w", t2, "(", ObjectName(j), t2, ", ",
                  rng_.NextBelow(1000), ") c", t1, " c", t2, "\n");
    last_writer_[i] = t1;
    last_writer_[j] = t2;
    events += 10;
  }
  while (events < static_cast<size_t>(events_per_batch_)) {
    uint64_t t = next_txn_++;
    size_t reads = 1 + rng_.NextBelow(2);
    size_t writes = 1 + rng_.NextBelow(2);
    for (size_t r = 0; r < reads; ++r) {
      size_t obj = rng_.NextBelow(last_writer_.size());
      out += StrCat("r", t, "(", CurrentVersion(obj), ") ");
      ++events;
    }
    // Distinct write targets: a second write of the same object by the
    // same transaction would need x<t>.2 tokens.
    size_t first = rng_.NextBelow(last_writer_.size());
    for (size_t w = 0; w < writes; ++w) {
      size_t obj = (first + w) % last_writer_.size();
      out += StrCat("w", t, "(", ObjectName(obj), t, ", ",
                    rng_.NextBelow(1000), ") ");
      ++events;
    }
    out += StrCat("c", t, "\n");
    ++events;
    for (size_t w = 0; w < writes; ++w) {
      last_writer_[(first + w) % last_writer_.size()] = t;
    }
  }
  return out;
}

}  // namespace adya::serve
