#ifndef ADYA_SERVE_SESSION_H_
#define ADYA_SERVE_SESSION_H_

// One certification session: the server-side state behind one client
// connection. A session wraps a streaming IncrementalChecker plus a
// StreamParser whose state persists across event batches, so a history
// split into wire frames at any event boundary certifies identically to
// the offline adya::Checker on the concatenated text (the serve
// differential test pins this, witnesses byte for byte).
//
// Sessions are single-threaded by construction: the server pins each
// session to one worker shard, so Apply() needs no locking.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/incremental.h"
#include "core/levels.h"
#include "history/parser.h"
#include "obs/stats.h"

namespace adya::serve {

/// Parsed kOpen payload: `level=PL-3 [max_pending=N] [check_threads=N]
/// [gc_watermark=N] [gc_min_window=N]`. Unknown keys are rejected (a client
/// talking a newer dialect should fail loudly).
struct SessionOptions {
  IsolationLevel level = IsolationLevel::kPL3;
  /// Per-session pending-batch bound; 0 means "server default". Values
  /// above the server's limit are clamped to it.
  int max_pending = 0;
  /// Threads the session's checker may use for its offline witness /
  /// audit passes (verdicts and witness text are thread-count-invariant);
  /// 0 means "server default" (--check-threads). Values above the server's
  /// limit are clamped to it. The streaming per-event path stays
  /// single-threaded either way — sessions are pinned to one worker shard.
  int check_threads = 0;
  /// Prefix GC for this session's checker (DESIGN.md §12). OPEN's
  /// gc_watermark=N enables it, gc_min_window=N sizes the retained
  /// window; when OPEN names neither key the server's --gc-* defaults
  /// apply instead (see ServeOptions::gc).
  GcOptions gc;
  /// Whether OPEN carried an explicit gc_* key (so the server knows not
  /// to overwrite with its defaults).
  bool gc_from_open = false;

  static Result<SessionOptions> Parse(std::string_view text);
};

/// What one applied batch produced: the counts for the kVerdict line and
/// the fresh violations for kWitness frames.
struct BatchOutcome {
  uint32_t seq = 0;
  uint64_t events = 0;
  uint64_t commits = 0;
  std::vector<Violation> fresh;

  /// The kVerdict payload: `seq=N events=E commits=C fresh=K`.
  std::string VerdictPayload() const;
};

class Session {
 public:
  Session(uint64_t id, const SessionOptions& options,
          obs::StatsRegistry* stats);

  uint64_t id() const { return id_; }
  IsolationLevel level() const { return options_.level; }

  /// Parses and certifies one event batch. An error (malformed notation,
  /// ill-formed stream) poisons nothing server-wide — the caller replies
  /// kError and closes the connection.
  Result<BatchOutcome> Apply(uint32_t seq, std::string_view text);

  uint64_t batches() const { return batches_; }
  uint64_t events() const { return events_; }
  uint64_t commits() const { return commits_; }
  uint64_t violations() const { return violations_; }

  /// Prefix-GC observability for the session's checker (zero with GC off).
  uint64_t gc_runs() const { return checker_.gc_runs(); }
  uint64_t gc_freed_events() const { return checker_.gc_freed_events(); }

  /// {"id":…,"level":"PL-3","batches":…,"events":…,"commits":…,
  ///  "violations":…} for the kStatsReply session section.
  std::string ToJson() const;

 private:
  const uint64_t id_;
  const SessionOptions options_;
  /// Owned worker pool for the checker's offline passes; null below two
  /// threads. Declared before checker_, which borrows the raw pointer.
  std::unique_ptr<ThreadPool> pool_;
  IncrementalChecker checker_;
  StreamParser parser_;
  uint64_t batches_ = 0;
  uint64_t events_ = 0;
  uint64_t commits_ = 0;
  uint64_t violations_ = 0;
};

}  // namespace adya::serve

#endif  // ADYA_SERVE_SESSION_H_
