#include "serve/framing.h"

#include <cstring>

#include "common/net.h"
#include "common/str_util.h"

namespace adya::serve {
namespace {

uint32_t LoadLe32(const char* p) {
  // Byte-wise assembly: independent of host endianness and alignment.
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void StoreLe32(char* p, uint32_t v) {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
  p[2] = static_cast<char>((v >> 16) & 0xFF);
  p[3] = static_cast<char>((v >> 24) & 0xFF);
}

constexpr size_t kHeaderSize = 5;  // u32 length + u8 type

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kOpen:
    case FrameType::kEvents:
    case FrameType::kStats:
    case FrameType::kClose:
    case FrameType::kHelloOk:
    case FrameType::kOpenOk:
    case FrameType::kVerdict:
    case FrameType::kWitness:
    case FrameType::kBusy:
    case FrameType::kStatsReply:
    case FrameType::kCloseOk:
    case FrameType::kError:
      return true;
  }
  return false;
}

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kOpen: return "OPEN";
    case FrameType::kEvents: return "EVENTS";
    case FrameType::kStats: return "STATS";
    case FrameType::kClose: return "CLOSE";
    case FrameType::kHelloOk: return "HELLO_OK";
    case FrameType::kOpenOk: return "OPEN_OK";
    case FrameType::kVerdict: return "VERDICT";
    case FrameType::kWitness: return "WITNESS";
    case FrameType::kBusy: return "BUSY";
    case FrameType::kStatsReply: return "STATS_REPLY";
    case FrameType::kCloseOk: return "CLOSE_OK";
    case FrameType::kError: return "ERROR";
  }
  return "?";
}

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  char header[kHeaderSize];
  StoreLe32(header, static_cast<uint32_t>(payload.size()));
  header[4] = static_cast<char>(type);
  out->append(header, kHeaderSize);
  out->append(payload);
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  AppendFrame(&out, type, payload);
  return out;
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!error_.ok()) return error_;
  // Reclaim consumed prefix lazily, once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffer_.size() - consumed_ < kHeaderSize) return std::optional<Frame>(std::nullopt);
  const char* base = buffer_.data() + consumed_;
  uint32_t length = LoadLe32(base);
  uint8_t type = static_cast<uint8_t>(base[4]);
  if (length > max_payload_) {
    error_ = Status::InvalidArgument(
        StrCat("frame payload of ", length, " bytes exceeds the ",
               max_payload_, "-byte limit"));
    return error_;
  }
  if (!IsKnownFrameType(type)) {
    error_ = Status::InvalidArgument(
        StrCat("unknown frame type ", static_cast<int>(type)));
    return error_;
  }
  if (buffer_.size() - consumed_ < kHeaderSize + length) return std::optional<Frame>(std::nullopt);
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(base + kHeaderSize, length);
  consumed_ += kHeaderSize + length;
  return std::optional<Frame>(std::move(frame));
}

Result<Frame> ReadFrame(int fd, uint32_t max_payload) {
  char header[kHeaderSize];
  ADYA_RETURN_IF_ERROR(net::ReadFull(fd, header, kHeaderSize));
  uint32_t length = LoadLe32(header);
  uint8_t type = static_cast<uint8_t>(header[4]);
  if (length > max_payload) {
    return Status::InvalidArgument(
        StrCat("frame payload of ", length, " bytes exceeds the ",
               max_payload, "-byte limit"));
  }
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument(
        StrCat("unknown frame type ", static_cast<int>(type)));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(length);
  if (length > 0) {
    ADYA_RETURN_IF_ERROR(net::ReadFull(fd, frame.payload.data(), length));
  }
  return frame;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  std::string wire = EncodeFrame(type, payload);
  return net::WriteFull(fd, wire.data(), wire.size());
}

std::string EncodeEventsPayload(uint32_t seq, std::string_view text) {
  std::string out;
  out.reserve(4 + text.size());
  char prefix[4];
  StoreLe32(prefix, seq);
  out.append(prefix, 4);
  out.append(text);
  return out;
}

Result<std::pair<uint32_t, std::string_view>> DecodeEventsPayload(
    std::string_view payload) {
  if (payload.size() < 4) {
    return Status::InvalidArgument(
        "EVENTS payload shorter than its 4-byte batch seq");
  }
  uint32_t seq = LoadLe32(payload.data());
  return std::pair<uint32_t, std::string_view>(seq, payload.substr(4));
}

}  // namespace adya::serve
