#ifndef ADYA_SERVE_STREAM_TEXT_H_
#define ADYA_SERVE_STREAM_TEXT_H_

// Producing event-batch text for serve sessions: turn a recorded history
// into streamable chunks (engine-recorded workloads), or synthesize an
// endless deterministic stream (load generation). Shared by adya_load,
// bench_serve, and the serve tests.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "history/history.h"

namespace adya::serve {

/// A finalized history rendered for streaming: declarations (relations,
/// objects, predicates, per-transaction levels) followed by event chunks
/// split at token boundaries, every `events_per_batch` events. Unlike
/// FormatHistory this emits NO version-order block — a stream's version
/// orders are its commit order — so histories whose recorded version order
/// deviates from commit order certify as the commit-order reading.
/// Concatenating `decls` and all `batches` parses to the same events in
/// the same order as the source history.
struct StreamText {
  std::string decls;
  std::vector<std::string> batches;
};
StreamText FormatForStream(const History& h, size_t events_per_batch);

/// Deterministic synthetic event-stream generator for load and benches:
/// short serial transactions (a few reads of the latest committed
/// versions, a few writes, commit) over a fixed object universe, one
/// commit-terminated batch per NextBatch() call. With `write_skew_every`
/// > 0, every Nth batch interleaves a classic write-skew pair (both
/// transactions read both objects' current versions, then each blind-
/// writes a different one) — a G2 the session reports on first occurrence,
/// exercising the witness path. Two generators with the same construction
/// arguments produce byte-identical streams.
class SyntheticLoad {
 public:
  SyntheticLoad(uint64_t seed, int objects, int events_per_batch,
                int write_skew_every = 0);

  /// The next batch's notation text (always ends in commits; never splits
  /// a transaction across batches).
  std::string NextBatch();

  uint64_t txns_generated() const { return next_txn_ - 1; }

 private:
  std::string ObjectName(size_t index) const;
  /// `<name><writer>` or `<name>init` for the latest committed version.
  std::string CurrentVersion(size_t index) const;

  Rng rng_;
  const int events_per_batch_;
  int write_skew_every_;
  uint64_t batches_ = 0;
  uint64_t next_txn_ = 1;
  /// Latest committed writer per object; 0 = only the init version exists.
  std::vector<uint64_t> last_writer_;
};

}  // namespace adya::serve

#endif  // ADYA_SERVE_STREAM_TEXT_H_
