#include "serve/http.h"

#include <sys/socket.h>

#include <cerrno>

#include "common/net.h"
#include "common/str_util.h"

namespace adya::serve {
namespace {

std::string Response(int code, std::string_view reason,
                     std::string_view content_type, std::string_view body) {
  return StrCat("HTTP/1.0 ", code, " ", reason,
                "\r\nContent-Type: ", content_type,
                "\r\nContent-Length: ", body.size(),
                "\r\nConnection: close\r\n\r\n", body);
}

}  // namespace

HttpExporter::HttpExporter(std::string host, int port,
                           const obs::StatsRegistry* stats)
    : host_(std::move(host)), port_(port), stats_(stats) {}

HttpExporter::~HttpExporter() { Shutdown(); }

Status HttpExporter::Start() {
  ADYA_ASSIGN_OR_RETURN(listen_fd_, net::ListenTcp(host_, &port_));
  started_ = true;
  acceptor_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void HttpExporter::Shutdown() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_relaxed);
  net::ShutdownBoth(listen_fd_);
  acceptor_.join();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
}

void HttpExporter::Loop() {
  for (;;) {
    Result<int> fd = net::Accept(listen_fd_);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd.ok()) net::CloseFd(*fd);
      return;
    }
    if (!fd.ok()) return;
    Handle(*fd);
    net::CloseFd(*fd);
  }
}

void HttpExporter::Handle(int fd) {
  // Read until the header terminator (scrape requests have no body) or a
  // small cap; a slow or garbage client just gets the connection closed.
  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(got));
  }
  size_t sp1 = request.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : request.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || request.compare(0, sp1, "GET") != 0) {
    std::string resp =
        Response(400, "Bad Request", "text/plain", "only GET is served\n");
    net::WriteFull(fd, resp.data(), resp.size());
    return;
  }
  std::string path = request.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string resp;
  if (path == "/metrics") {
    resp = Response(200, "OK", "text/plain; version=0.0.4",
                    stats_->Snapshot().ToPrometheus());
  } else if (path == "/statsz") {
    resp = Response(200, "OK", "application/json",
                    stats_->Snapshot().ToJson() + "\n");
  } else {
    resp = Response(404, "Not Found", "text/plain",
                    "try /metrics or /statsz\n");
  }
  net::WriteFull(fd, resp.data(), resp.size());
}

}  // namespace adya::serve
