#ifndef ADYA_SERVE_CLIENT_H_
#define ADYA_SERVE_CLIENT_H_

// Client side of the adya-serve protocol (framing.h): dial, handshake,
// open a session, stream event batches, collect verdicts and witnesses.
// Used by adya_load, the serve benches, and the differential tests.
//
// Two shapes of use:
//  * Certify(text): send one batch and block for its verdict —
//    backpressure (BUSY) is absorbed by resending until accepted.
//  * Send(text) + Await(): pipelined. Send fires the next seq without
//    waiting; Await blocks for the oldest outstanding verdict. A BUSY
//    reply makes the client resend every unacknowledged batch from the
//    seq the server named — batches are kept until their verdict lands.
//
// Single-threaded: one thread drives a Client.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "history/ids.h"
#include "serve/framing.h"

namespace adya::serve {

/// One fresh violation pushed back by the server, split from the WITNESS
/// payload ("<phenomenon>\n<description>").
struct WitnessReply {
  std::string phenomenon;
  std::string description;
};

/// One batch's verdict, with the witnesses that preceded it.
struct BatchReply {
  uint32_t seq = 0;
  uint64_t events = 0;
  uint64_t commits = 0;
  std::vector<WitnessReply> fresh;
};

class Client {
 public:
  static Result<Client> ConnectTcp(const std::string& host, int port);
  static Result<Client> ConnectUnix(const std::string& path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// HELLO / HELLO_OK protocol handshake.
  Status Handshake();

  /// Opens the session; returns the server-assigned session id.
  /// `max_pending` > 0 asks the server for a lower in-flight bound.
  /// `extra` appends further OPEN key=value pairs verbatim (e.g.
  /// "gc_watermark=1024 gc_min_window=8192" to enable the session
  /// checker's prefix GC).
  Result<uint64_t> Open(IsolationLevel level, int max_pending = 0,
                        std::string_view extra = {});

  /// Sends one batch and blocks until its verdict arrives (absorbing BUSY
  /// by resending). Requires no other batches outstanding.
  Result<BatchReply> Certify(std::string_view text);

  /// Pipelined interface: fire the next batch without waiting.
  Status Send(std::string_view text);
  /// Blocks for the oldest outstanding verdict; resends on BUSY.
  Result<BatchReply> Await();
  size_t outstanding() const { return unacked_.size(); }

  /// STATS round-trip: the server's JSON stats payload. Requires no
  /// batches outstanding (replies are not tagged).
  Result<std::string> Stats();

  /// CLOSE round-trip: returns the final session stats JSON and shuts the
  /// connection down.
  Result<std::string> CloseSession();

  /// BUSY replies absorbed so far (load clients report this).
  uint64_t busy_retries() const { return busy_retries_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  Status ResendFrom(uint32_t expect);
  /// Next frame that is not a stale BUSY (see the definition for why those
  /// can trail the final verdict of a pipelined exchange).
  Result<Frame> ReadNonBusyFrame();
  /// Reads frames until a VERDICT lands, absorbing WITNESS and BUSY.
  Result<BatchReply> AwaitVerdict();

  int fd_ = -1;
  uint32_t next_seq_ = 0;
  /// Sent but unacknowledged batches, by seq (resent on BUSY).
  std::map<uint32_t, std::string> unacked_;
  std::vector<WitnessReply> witnesses_;  // collected before their verdict
  uint64_t busy_retries_ = 0;
};

}  // namespace adya::serve

#endif  // ADYA_SERVE_CLIENT_H_
