#include "serve/client.h"

#include <charconv>
#include <chrono>
#include <thread>
#include <utility>

#include "common/net.h"
#include "common/str_util.h"

namespace adya::serve {
namespace {

/// Parses "key=<uint>" out of a space-separated "k=v k=v" payload.
Result<uint64_t> KvField(std::string_view payload, std::string_view key) {
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t end = payload.find(' ', pos);
    if (end == std::string_view::npos) end = payload.size();
    std::string_view token = payload.substr(pos, end - pos);
    pos = end + 1;
    size_t eq = token.find('=');
    if (eq == std::string_view::npos || token.substr(0, eq) != key) continue;
    std::string_view value = token.substr(eq + 1);
    uint64_t n = 0;
    auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), n);
    if (ec != std::errc() || ptr != value.data() + value.size()) {
      return Status::Internal(
          StrCat("malformed server field '", token, "' in '", payload, "'"));
    }
    return n;
  }
  return Status::Internal(
      StrCat("server reply '", payload, "' lacks field '", key, "'"));
}

}  // namespace

Result<Client> Client::ConnectTcp(const std::string& host, int port) {
  ADYA_ASSIGN_OR_RETURN(int fd, net::DialTcp(host, port));
  return Client(fd);
}

Result<Client> Client::ConnectUnix(const std::string& path) {
  ADYA_ASSIGN_OR_RETURN(int fd, net::DialUnix(path));
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_seq_(other.next_seq_),
      unacked_(std::move(other.unacked_)),
      witnesses_(std::move(other.witnesses_)),
      busy_retries_(other.busy_retries_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    net::CloseFd(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_seq_ = other.next_seq_;
    unacked_ = std::move(other.unacked_);
    witnesses_ = std::move(other.witnesses_);
    busy_retries_ = other.busy_retries_;
  }
  return *this;
}

Client::~Client() { net::CloseFd(fd_); }

Status Client::Handshake() {
  ADYA_RETURN_IF_ERROR(WriteFrame(fd_, FrameType::kHello, kProtocolId));
  ADYA_ASSIGN_OR_RETURN(Frame reply, ReadFrame(fd_));
  if (reply.type == FrameType::kError) {
    return Status::Internal(StrCat("server: ", reply.payload));
  }
  if (reply.type != FrameType::kHelloOk || reply.payload != kProtocolId) {
    return Status::Internal(StrCat("unexpected handshake reply ",
                                   FrameTypeName(reply.type), " '",
                                   reply.payload, "'"));
  }
  return Status::OK();
}

Result<uint64_t> Client::Open(IsolationLevel level, int max_pending,
                              std::string_view extra) {
  std::string payload = StrCat("level=", IsolationLevelName(level));
  if (max_pending > 0) payload += StrCat(" max_pending=", max_pending);
  if (!extra.empty()) payload += StrCat(" ", extra);
  ADYA_RETURN_IF_ERROR(WriteFrame(fd_, FrameType::kOpen, payload));
  ADYA_ASSIGN_OR_RETURN(Frame reply, ReadFrame(fd_));
  if (reply.type == FrameType::kError) {
    return Status::Internal(StrCat("server: ", reply.payload));
  }
  if (reply.type != FrameType::kOpenOk) {
    return Status::Internal(
        StrCat("unexpected OPEN reply ", FrameTypeName(reply.type)));
  }
  return KvField(reply.payload, "session");
}

Status Client::Send(std::string_view text) {
  uint32_t seq = next_seq_++;
  auto [it, inserted] = unacked_.emplace(seq, std::string(text));
  (void)inserted;
  return WriteFrame(fd_, FrameType::kEvents,
                    EncodeEventsPayload(seq, it->second));
}

Status Client::ResendFrom(uint32_t expect) {
  for (auto it = unacked_.lower_bound(expect); it != unacked_.end(); ++it) {
    ADYA_RETURN_IF_ERROR(WriteFrame(
        fd_, FrameType::kEvents, EncodeEventsPayload(it->first, it->second)));
  }
  return Status::OK();
}

Result<BatchReply> Client::AwaitVerdict() {
  for (;;) {
    ADYA_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
    switch (frame.type) {
      case FrameType::kWitness: {
        WitnessReply w;
        size_t nl = frame.payload.find('\n');
        if (nl == std::string::npos) {
          w.description = std::move(frame.payload);
        } else {
          w.phenomenon = frame.payload.substr(0, nl);
          w.description = frame.payload.substr(nl + 1);
        }
        witnesses_.push_back(std::move(w));
        break;
      }
      case FrameType::kVerdict: {
        BatchReply reply;
        ADYA_ASSIGN_OR_RETURN(uint64_t seq, KvField(frame.payload, "seq"));
        ADYA_ASSIGN_OR_RETURN(reply.events,
                              KvField(frame.payload, "events"));
        ADYA_ASSIGN_OR_RETURN(reply.commits,
                              KvField(frame.payload, "commits"));
        reply.seq = static_cast<uint32_t>(seq);
        reply.fresh = std::move(witnesses_);
        witnesses_.clear();
        unacked_.erase(reply.seq);
        return reply;
      }
      case FrameType::kBusy: {
        ++busy_retries_;
        ADYA_ASSIGN_OR_RETURN(uint64_t expect,
                              KvField(frame.payload, "expect"));
        // Brief pause so a saturated (or test-paused) server is not
        // hammered with a resend storm; verdicts for already-admitted
        // batches free capacity meanwhile.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ADYA_RETURN_IF_ERROR(ResendFrom(static_cast<uint32_t>(expect)));
        break;
      }
      case FrameType::kError:
        return Status::Internal(StrCat("server: ", frame.payload));
      default:
        return Status::Internal(StrCat("unexpected server frame ",
                                       FrameTypeName(frame.type),
                                       " while awaiting a verdict"));
    }
  }
}

Result<Frame> Client::ReadNonBusyFrame() {
  // A pipelined exchange can leave stale BUSY frames in the stream: the
  // client resends on BUSY, the server may re-reject duplicates of batches
  // it accepted meanwhile, and those rejections can trail the final
  // verdict. With nothing unacknowledged they carry no obligation — skip
  // them so STATS/CLOSE round trips stay aligned.
  for (;;) {
    ADYA_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
    if (frame.type != FrameType::kBusy) return frame;
  }
}

Result<BatchReply> Client::Await() {
  if (unacked_.empty()) {
    return Status::Internal("Await with no batch outstanding");
  }
  return AwaitVerdict();
}

Result<BatchReply> Client::Certify(std::string_view text) {
  if (!unacked_.empty()) {
    return Status::Internal("Certify with pipelined batches outstanding");
  }
  ADYA_RETURN_IF_ERROR(Send(text));
  return AwaitVerdict();
}

Result<std::string> Client::Stats() {
  if (!unacked_.empty()) {
    return Status::Internal("Stats with pipelined batches outstanding");
  }
  ADYA_RETURN_IF_ERROR(WriteFrame(fd_, FrameType::kStats, ""));
  ADYA_ASSIGN_OR_RETURN(Frame reply, ReadNonBusyFrame());
  if (reply.type == FrameType::kError) {
    return Status::Internal(StrCat("server: ", reply.payload));
  }
  if (reply.type != FrameType::kStatsReply) {
    return Status::Internal(
        StrCat("unexpected STATS reply ", FrameTypeName(reply.type)));
  }
  return std::move(reply.payload);
}

Result<std::string> Client::CloseSession() {
  if (!unacked_.empty()) {
    return Status::Internal("CloseSession with batches outstanding");
  }
  ADYA_RETURN_IF_ERROR(WriteFrame(fd_, FrameType::kClose, ""));
  ADYA_ASSIGN_OR_RETURN(Frame reply, ReadNonBusyFrame());
  if (reply.type == FrameType::kError) {
    return Status::Internal(StrCat("server: ", reply.payload));
  }
  if (reply.type != FrameType::kCloseOk) {
    return Status::Internal(
        StrCat("unexpected CLOSE reply ", FrameTypeName(reply.type)));
  }
  net::CloseFd(fd_);
  fd_ = -1;
  return std::move(reply.payload);
}

}  // namespace adya::serve
