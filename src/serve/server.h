#ifndef ADYA_SERVE_SERVER_H_
#define ADYA_SERVE_SERVER_H_

// The adya_serve daemon core: accepts connections on TCP and/or a
// Unix-domain socket, runs one certification Session per connection, and
// shards sessions across a ShardedWorkerPool so certification work for
// different sessions proceeds in parallel while each session stays
// single-threaded (no locks around the IncrementalChecker).
//
// Thread shape:
//   * one acceptor thread per listener;
//   * one reader thread per connection: recv into a buffer, feed the
//     FrameDecoder, dispatch frames (handshake and backpressure replies go
//     out directly from the reader; certification work is posted to the
//     connection's worker shard);
//   * N worker shards (connection id mod N): apply event batches to the
//     session, write witness + verdict frames.
// The reader and the worker can both write to one connection, so each
// connection carries a write mutex; replies for one batch are encoded into
// a single buffer and written with one send.
//
// Backpressure: the reader tracks in-flight batches per connection; a
// batch arriving above `max_pending` (or out of order) is rejected with a
// BUSY frame naming the seq to resend from — nothing is queued, so a slow
// session cannot grow server memory without bound.
//
// Graceful drain (SIGTERM path): Shutdown() stops the listeners, wakes the
// readers (read-side shutdown), joins them, then drains the worker pool —
// every batch accepted before shutdown still gets its verdict written —
// and finally closes the connection fds.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/net.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/stats.h"
#include "serve/framing.h"
#include "serve/session.h"

namespace adya::serve {

struct ServeOptions {
  /// TCP listen address. `port` 0 binds an ephemeral port (read it back
  /// with Server::port()); -1 disables the TCP listener.
  std::string host = "127.0.0.1";
  int port = 0;
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string unix_path;

  /// Worker shards certification work is distributed over.
  int workers = 4;
  /// Default per-connection bound on in-flight event batches; OPEN's
  /// max_pending option can lower (never raise) it.
  int max_pending = 64;
  /// Batches one worker wakeup drains from its shard queue at most.
  int drain_batches = 8;
  /// Default (and maximum) threads per session for the checker's offline
  /// witness/audit passes; OPEN's check_threads option can lower — never
  /// raise — it. 1 keeps sessions fully single-threaded, as before.
  int check_threads = 1;
  uint32_t max_frame_payload = kMaxFramePayload;

  /// Default prefix-GC options for sessions whose OPEN names no gc_* key
  /// (--gc-watermark / --gc-min-window on adya_serve). Off by default:
  /// long-lived sessions then grow with their history, as before.
  GcOptions gc;

  /// Registry for the serve.* metrics (DESIGN.md §9); also handed to every
  /// session's IncrementalChecker. May be null.
  obs::StatsRegistry* stats = nullptr;
};

class Server {
 public:
  explicit Server(const ServeOptions& options);
  ~Server();  // implies Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the acceptor and worker threads.
  Status Start();

  /// Graceful drain; idempotent, also run by the destructor.
  void Shutdown();

  /// The bound TCP port (after Start; -1 when TCP is disabled).
  int port() const { return port_; }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Test hook: freeze the worker shards so queued batches pile up and
  /// BUSY replies can be observed deterministically.
  void PauseWorkersForTest(bool paused);

 private:
  struct Connection;

  void AcceptLoop(int listen_fd);
  void StartConnection(int fd);
  void ReaderLoop(std::shared_ptr<Connection> conn);
  /// Dispatches one decoded frame; returns false when the connection is
  /// done (error replied or close under way).
  bool HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void ProcessBatch(const std::shared_ptr<Connection>& conn, uint32_t seq,
                    std::string text);
  /// Writes an ERROR frame (best effort) and severs the connection.
  void FailConnection(const std::shared_ptr<Connection>& conn,
                      const Status& error);

  ServeOptions options_;
  int port_ = -1;

  int tcp_listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  std::unique_ptr<ShardedWorkerPool> pool_;
  std::vector<std::thread> acceptors_;

  std::mutex mu_;  // guards conns_, readers_, started_/stopped_ transitions
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> stopping_{false};

  std::atomic<uint64_t> next_conn_id_{0};
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> connections_accepted_{0};

  // serve.* instruments, resolved once (null when options_.stats is null).
  obs::Counter* connections_total_ = nullptr;
  obs::Counter* sessions_total_ = nullptr;
  obs::Counter* rx_batches_ = nullptr;
  obs::Counter* busy_replies_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;
  obs::Histogram* certify_us_ = nullptr;
  obs::Histogram* reply_us_ = nullptr;
};

}  // namespace adya::serve

#endif  // ADYA_SERVE_SERVER_H_
