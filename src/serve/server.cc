#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/str_util.h"
#include "core/phenomena.h"

namespace adya::serve {

namespace {
enum class ConnState { kAwaitHello, kAwaitOpen, kReady };
}  // namespace

/// Per-connection state. The reader thread owns everything except
/// `session` (worker-shard-owned once opened) and the write side (shared,
/// guarded by write_mu). `pending` is the reader/worker handoff: the
/// reader admits a batch only below the limit, the worker decrements after
/// replying.
struct Server::Connection {
  uint64_t id = 0;
  int fd = -1;
  ConnState state = ConnState::kAwaitHello;
  FrameDecoder decoder;
  std::unique_ptr<Session> session;
  int max_pending = 0;

  uint32_t next_seq = 0;  // reader-owned: seq the next EVENTS must carry
  std::atomic<int> pending{0};
  std::atomic<bool> dead{false};

  std::mutex write_mu;

  explicit Connection(uint32_t max_frame_payload)
      : decoder(max_frame_payload) {}
  ~Connection() { net::CloseFd(fd); }

  /// One frame (or a pre-batched buffer) out, serialized against the other
  /// writer. Returns false (and marks the connection dead) on send failure.
  bool Write(FrameType type, std::string_view payload) {
    std::string wire = EncodeFrame(type, payload);
    return WriteWire(wire);
  }
  bool WriteWire(std::string_view wire) {
    std::lock_guard<std::mutex> lk(write_mu);
    if (dead.load(std::memory_order_relaxed)) return false;
    if (!net::WriteFull(fd, wire.data(), wire.size()).ok()) {
      dead.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

Server::Server(const ServeOptions& options) : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_pending < 1) options_.max_pending = 1;
  if (options_.drain_batches < 1) options_.drain_batches = 1;
  if (options_.check_threads < 1) options_.check_threads = 1;
  if (obs::StatsRegistry* stats = options_.stats) {
    connections_total_ = &stats->counter("serve.connections");
    sessions_total_ = &stats->counter("serve.sessions");
    rx_batches_ = &stats->counter("serve.rx_batches");
    busy_replies_ = &stats->counter("serve.busy_replies");
    queue_depth_ = &stats->histogram("serve.queue_depth");
    certify_us_ = &stats->histogram("serve.certify_us");
    reply_us_ = &stats->histogram("serve.reply_us");
  }
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (started_) return Status::Internal("Server::Start called twice");
    started_ = true;
  }
  if (options_.port < 0 && options_.unix_path.empty()) {
    return Status::InvalidArgument("no listener configured");
  }
  if (options_.port >= 0) {
    int port = options_.port;
    ADYA_ASSIGN_OR_RETURN(tcp_listen_fd_, net::ListenTcp(options_.host, &port));
    port_ = port;
  }
  if (!options_.unix_path.empty()) {
    ADYA_ASSIGN_OR_RETURN(unix_listen_fd_, net::ListenUnix(options_.unix_path));
  }
  pool_ = std::make_unique<ShardedWorkerPool>(
      options_.workers, static_cast<size_t>(options_.drain_batches));
  if (tcp_listen_fd_ >= 0) {
    acceptors_.emplace_back([this] { AcceptLoop(tcp_listen_fd_); });
  }
  if (unix_listen_fd_ >= 0) {
    acceptors_.emplace_back([this] { AcceptLoop(unix_listen_fd_); });
  }
  return Status::OK();
}

void Server::AcceptLoop(int listen_fd) {
  for (;;) {
    Result<int> fd = net::Accept(listen_fd);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd.ok()) net::CloseFd(*fd);
      return;
    }
    if (!fd.ok()) return;  // listener broke outside shutdown: stop accepting
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (connections_total_ != nullptr) connections_total_->Add();
    StartConnection(*fd);
  }
}

void Server::StartConnection(int fd) {
  auto conn = std::make_shared<Connection>(options_.max_frame_payload);
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->fd = fd;
  conn->max_pending = options_.max_pending;
  std::lock_guard<std::mutex> lk(mu_);
  if (stopping_.load(std::memory_order_relaxed)) return;  // dtor closes fd
  conns_.emplace(conn->id, conn);
  readers_.emplace_back([this, conn] { ReaderLoop(conn); });
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  char buf[64 * 1024];
  bool open = true;
  while (open && !conn->dead.load(std::memory_order_relaxed)) {
    ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      break;  // EOF or error: the peer (or Shutdown) closed the read side
    }
    conn->decoder.Append(std::string_view(buf, static_cast<size_t>(got)));
    // Drain every whole frame this read delivered (request aggregation:
    // one recv often carries many pipelined EVENTS frames).
    for (;;) {
      Result<std::optional<Frame>> next = conn->decoder.Next();
      if (!next.ok()) {
        FailConnection(conn, next.status());
        open = false;
        break;
      }
      if (!next->has_value()) break;
      if (!HandleFrame(conn, std::move(**next))) {
        open = false;
        break;
      }
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  conns_.erase(conn->id);
  // The Connection outlives this erase while worker tasks hold it; the fd
  // closes when the last reference drops.
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         Frame frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      if (conn->state != ConnState::kAwaitHello) {
        FailConnection(conn, Status::InvalidArgument("duplicate HELLO"));
        return false;
      }
      if (frame.payload != kProtocolId) {
        FailConnection(conn, Status::InvalidArgument(StrCat(
                                 "protocol mismatch: client speaks '",
                                 frame.payload, "', server speaks '",
                                 kProtocolId, "'")));
        return false;
      }
      conn->state = ConnState::kAwaitOpen;
      return conn->Write(FrameType::kHelloOk, kProtocolId);
    }
    case FrameType::kOpen: {
      if (conn->state != ConnState::kAwaitOpen) {
        FailConnection(conn, Status::InvalidArgument(
                                 conn->state == ConnState::kAwaitHello
                                     ? "OPEN before HELLO"
                                     : "duplicate OPEN"));
        return false;
      }
      Result<SessionOptions> parsed = SessionOptions::Parse(frame.payload);
      if (!parsed.ok()) {
        FailConnection(conn, parsed.status());
        return false;
      }
      if (parsed->max_pending > 0 && parsed->max_pending < conn->max_pending) {
        conn->max_pending = parsed->max_pending;
      }
      // 0 (unset) takes the server default; explicit requests clamp to it —
      // --check-threads is the operator's per-session resource ceiling.
      if (parsed->check_threads == 0 ||
          parsed->check_threads > options_.check_threads) {
        parsed->check_threads = options_.check_threads;
      }
      if (!parsed->gc_from_open) parsed->gc = options_.gc;
      uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
      conn->session = std::make_unique<Session>(id, *parsed, options_.stats);
      conn->state = ConnState::kReady;
      if (sessions_total_ != nullptr) sessions_total_->Add();
      return conn->Write(FrameType::kOpenOk, StrCat("session=", id));
    }
    case FrameType::kEvents: {
      if (conn->state != ConnState::kReady) {
        FailConnection(conn,
                       Status::InvalidArgument("EVENTS before session open"));
        return false;
      }
      Result<std::pair<uint32_t, std::string_view>> decoded =
          DecodeEventsPayload(frame.payload);
      if (!decoded.ok()) {
        FailConnection(conn, decoded.status());
        return false;
      }
      auto [seq, text] = *decoded;
      int pending = conn->pending.load(std::memory_order_relaxed);
      if (seq != conn->next_seq || pending >= conn->max_pending) {
        // Out of order means the client pipelined past an earlier BUSY;
        // either way the remedy is the same: resend from next_seq once
        // in-flight work drains. Nothing is queued for a rejected batch.
        if (busy_replies_ != nullptr) busy_replies_->Add();
        return conn->Write(
            FrameType::kBusy,
            StrCat("expect=", conn->next_seq, " pending=", pending,
                   " limit=", conn->max_pending));
      }
      conn->next_seq = seq + 1;
      conn->pending.fetch_add(1, std::memory_order_relaxed);
      if (rx_batches_ != nullptr) rx_batches_->Add();
      size_t depth = pool_->Post(
          conn->id,
          [this, conn, seq, text = std::string(text)]() mutable {
            ProcessBatch(conn, seq, std::move(text));
          });
      if (queue_depth_ != nullptr) queue_depth_->Record(depth);
      return true;
    }
    case FrameType::kStats: {
      if (conn->state != ConnState::kReady) {
        FailConnection(conn,
                       Status::InvalidArgument("STATS before session open"));
        return false;
      }
      // Through the shard queue so the reply reflects (and orders after)
      // every batch already admitted.
      pool_->Post(conn->id, [conn] {
        if (conn->dead.load(std::memory_order_relaxed)) return;
        conn->Write(FrameType::kStatsReply,
                    StrCat("{\"session\":", conn->session->ToJson(),
                           ",\"pending\":",
                           conn->pending.load(std::memory_order_relaxed),
                           "}"));
      });
      return true;
    }
    case FrameType::kClose: {
      if (conn->state != ConnState::kReady) {
        FailConnection(conn,
                       Status::InvalidArgument("CLOSE before session open"));
        return false;
      }
      pool_->Post(conn->id, [conn] {
        if (conn->dead.load(std::memory_order_relaxed)) return;
        conn->Write(FrameType::kCloseOk, conn->session->ToJson());
        net::ShutdownBoth(conn->fd);
        conn->dead.store(true, std::memory_order_relaxed);
      });
      // Stop reading: anything after CLOSE is a protocol violation anyway.
      return false;
    }
    default:
      FailConnection(conn, Status::InvalidArgument(
                               StrCat("unexpected client frame ",
                                      FrameTypeName(frame.type))));
      return false;
  }
}

void Server::ProcessBatch(const std::shared_ptr<Connection>& conn,
                          uint32_t seq, std::string text) {
  if (conn->dead.load(std::memory_order_relaxed)) {
    conn->pending.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  Result<BatchOutcome> outcome = [&] {
    ADYA_TIMED_PHASE(options_.stats, "serve.certify_us");
    return conn->session->Apply(seq, text);
  }();
  if (!outcome.ok()) {
    // Connection-scoped failure: this stream is not a well-formed history,
    // so this session cannot continue — but only this session.
    FailConnection(conn, outcome.status());
    conn->pending.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  {
    ADYA_TIMED_PHASE(options_.stats, "serve.reply_us");
    std::string wire;
    for (const Violation& v : outcome->fresh) {
      AppendFrame(&wire, FrameType::kWitness,
                  StrCat(PhenomenonName(v.phenomenon), "\n", v.description));
    }
    AppendFrame(&wire, FrameType::kVerdict, outcome->VerdictPayload());
    conn->WriteWire(wire);
  }
  conn->pending.fetch_sub(1, std::memory_order_relaxed);
}

void Server::FailConnection(const std::shared_ptr<Connection>& conn,
                            const Status& error) {
  conn->Write(FrameType::kError, error.message());
  conn->dead.store(true, std::memory_order_relaxed);
  net::ShutdownBoth(conn->fd);
}

void Server::PauseWorkersForTest(bool paused) {
  if (pool_ != nullptr) pool_->Pause(paused);
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_relaxed);
  // Break the accept loops: shutdown() on a listening socket makes a
  // blocked accept return, unlike close() (which would race fd reuse).
  net::ShutdownBoth(tcp_listen_fd_);
  net::ShutdownBoth(unix_listen_fd_);
  for (std::thread& t : acceptors_) t.join();
  acceptors_.clear();
  net::CloseFd(tcp_listen_fd_);
  net::CloseFd(unix_listen_fd_);
  tcp_listen_fd_ = unix_listen_fd_ = -1;
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());

  // Wake every reader (read-side shutdown → recv returns 0) and join them.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, conn] : conns_) net::ShutdownRead(conn->fd);
    readers.swap(readers_);
  }
  for (std::thread& t : readers) t.join();

  // Drain the worker pool: batches admitted before shutdown still certify
  // and their verdicts still go out.
  if (pool_ != nullptr) pool_->Shutdown();

  // Now nothing references the connections but the map.
  std::lock_guard<std::mutex> lk(mu_);
  conns_.clear();
}

}  // namespace adya::serve
