#include "serve/session.h"

#include <array>
#include <charconv>

#include "common/str_util.h"
#include "history/event.h"

namespace adya::serve {
namespace {

constexpr std::array<IsolationLevel, 7> kAllLevels = {
    IsolationLevel::kPL1,    IsolationLevel::kPL2,  IsolationLevel::kPLCS,
    IsolationLevel::kPL2Plus, IsolationLevel::kPL299, IsolationLevel::kPLSI,
    IsolationLevel::kPL3,
};

Result<IsolationLevel> LevelFromName(std::string_view name) {
  for (IsolationLevel level : kAllLevels) {
    if (IsolationLevelName(level) == name) return level;
  }
  return Status::InvalidArgument(StrCat("unknown isolation level '", name,
                                        "' (expected PL-1 .. PL-3)"));
}

}  // namespace

Result<SessionOptions> SessionOptions::Parse(std::string_view text) {
  SessionOptions options;
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
    if (pos >= text.size()) break;
    size_t end = pos;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    std::string_view token = text.substr(pos, end - pos);
    pos = end;
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrCat("malformed OPEN option '", token, "' (expected key=value)"));
    }
    std::string_view key = token.substr(0, eq);
    std::string_view value = token.substr(eq + 1);
    if (key == "level") {
      ADYA_ASSIGN_OR_RETURN(options.level, LevelFromName(value));
    } else if (key == "check_threads") {
      int n = 0;
      auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), n);
      if (ec != std::errc() || ptr != value.data() + value.size() || n < 1) {
        return Status::InvalidArgument(
            StrCat("bad check_threads '", value, "'"));
      }
      options.check_threads = n;
    } else if (key == "max_pending") {
      int n = 0;
      auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), n);
      if (ec != std::errc() || ptr != value.data() + value.size() || n < 0) {
        return Status::InvalidArgument(
            StrCat("bad max_pending '", value, "'"));
      }
      options.max_pending = n;
    } else if (key == "gc_watermark") {
      uint64_t n = 0;
      auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), n);
      if (ec != std::errc() || ptr != value.data() + value.size() || n < 1) {
        return Status::InvalidArgument(
            StrCat("bad gc_watermark '", value, "'"));
      }
      options.gc.enabled = true;
      options.gc.watermark_interval = n;
      options.gc_from_open = true;
    } else if (key == "gc_min_window") {
      uint64_t n = 0;
      auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), n);
      if (ec != std::errc() || ptr != value.data() + value.size() || n < 1) {
        return Status::InvalidArgument(
            StrCat("bad gc_min_window '", value, "'"));
      }
      options.gc.min_window_events = n;
      options.gc_from_open = true;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown OPEN option '", key, "'"));
    }
  }
  return options;
}

std::string BatchOutcome::VerdictPayload() const {
  return StrCat("seq=", seq, " events=", events, " commits=", commits,
                " fresh=", fresh.size());
}

Session::Session(uint64_t id, const SessionOptions& options,
                 obs::StatsRegistry* stats)
    : id_(id),
      options_(options),
      pool_(options.check_threads > 1
                ? std::make_unique<ThreadPool>(options.check_threads)
                : nullptr),
      checker_(options.level, stats, options.gc, pool_.get()),
      parser_(&checker_.history()) {}

Result<BatchOutcome> Session::Apply(uint32_t seq, std::string_view text) {
  BatchOutcome outcome;
  outcome.seq = seq;
  Status status = parser_.Feed(text, [&](const Event& event) -> Status {
    ++outcome.events;
    if (event.type == EventType::kCommit) ++outcome.commits;
    ADYA_ASSIGN_OR_RETURN(std::vector<Violation> fresh,
                          checker_.Feed(event));
    for (Violation& v : fresh) outcome.fresh.push_back(std::move(v));
    return Status::OK();
  });
  // Even a failed batch counted against the session before dying; the
  // connection closes right after, so the tallies are diagnostics only.
  batches_ += 1;
  events_ += outcome.events;
  commits_ += outcome.commits;
  violations_ += outcome.fresh.size();
  ADYA_RETURN_IF_ERROR(status);
  return outcome;
}

std::string Session::ToJson() const {
  return StrCat("{\"id\":", id_, ",\"level\":\"",
                IsolationLevelName(options_.level), "\",\"batches\":",
                batches_, ",\"events\":", events_, ",\"commits\":", commits_,
                ",\"violations\":", violations_, "}");
}

}  // namespace adya::serve
