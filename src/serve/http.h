#ifndef ADYA_SERVE_HTTP_H_
#define ADYA_SERVE_HTTP_H_

// Minimal HTTP/1.0 exporter for the serve daemon's side port: GET /metrics
// returns the StatsRegistry snapshot in Prometheus text exposition format,
// GET /statsz returns it as one JSON object. Requests are tiny and rare
// (scrapes), so the acceptor thread handles them inline — no keep-alive,
// no pipelining, connection closed after each response.

#include <atomic>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/stats.h"

namespace adya::serve {

class HttpExporter {
 public:
  /// `*port` as in net::ListenTcp (0 = ephemeral, written back on Start).
  HttpExporter(std::string host, int port, const obs::StatsRegistry* stats);
  ~HttpExporter();  // implies Shutdown()

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  Status Start();
  void Shutdown();

  int port() const { return port_; }

 private:
  void Loop();
  void Handle(int fd);

  const std::string host_;
  int port_;
  const obs::StatsRegistry* stats_;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace adya::serve

#endif  // ADYA_SERVE_HTTP_H_
