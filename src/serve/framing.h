#ifndef ADYA_SERVE_FRAMING_H_
#define ADYA_SERVE_FRAMING_H_

// The adya_serve wire protocol: length-prefixed frames over a byte stream
// (TCP or a Unix-domain socket).
//
//   frame := u32 payload_length (little endian) | u8 type | payload
//
// One session per connection. The client speaks first:
//
//   -> kHello   "adya-serve/1"                (protocol handshake)
//   <- kHelloOk "adya-serve/1"
//   -> kOpen    "level=PL-3 [max_pending=N]"  (session open: PL level +
//   <- kOpenOk  "session=7"                    checker/session options)
//   -> kEvents  u32 seq | history-notation text
//   <- kWitness "G1a\n<witness text>"         (one per fresh violation,
//   <- kVerdict "seq=0 events=12 commits=3 fresh=1"    before the verdict)
//   <- kBusy    "expect=4 pending=64 limit=64" (backpressure: the batch
//                                              was rejected; resend from
//                                              seq `expect` after draining)
//   -> kStats   ""                            (any time after open)
//   <- kStatsReply <JSON>
//   -> kClose   ""                            (graceful session close;
//   <- kCloseOk "..."                          sent after pending batches
//                                              drain)
//   <- kError   <message>                     (connection-scoped: the
//                                              server closes this
//                                              connection, nothing else)
//
// Event batches carry the history notation of src/history/parser.h;
// verdict seq numbers echo the client's kEvents seq. Witness text is
// byte-identical to the offline adya::Checker's Violation::description on
// the same event stream (pinned by tests/serve_test.cc).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace adya::serve {

inline constexpr std::string_view kProtocolId = "adya-serve/1";

/// Hard ceiling on one frame's payload. A length prefix above the
/// connection's limit (default this) is rejected without allocating.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;

enum class FrameType : uint8_t {
  // client -> server
  kHello = 1,
  kOpen = 2,
  kEvents = 3,
  kStats = 4,
  kClose = 5,
  // server -> client
  kHelloOk = 65,
  kOpenOk = 66,
  kVerdict = 67,
  kWitness = 68,
  kBusy = 69,
  kStatsReply = 70,
  kCloseOk = 71,
  kError = 72,
};

bool IsKnownFrameType(uint8_t type);
std::string_view FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

/// Wire bytes for one frame, appended to `*out` (batching several frames
/// into one write is the reply hot path).
void AppendFrame(std::string* out, FrameType type, std::string_view payload);
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental decoder: feed arbitrary byte slices, take whole frames out.
/// Oversized length prefixes and unknown frame types are permanent errors —
/// the stream is unsynchronized and the connection must be dropped (every
/// later Next() keeps returning the error).
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Append(std::string_view bytes) { buffer_ += bytes; }

  /// The next whole frame, nullopt when more bytes are needed, or the
  /// stream error.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  const uint32_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_;
};

/// Blocking single-frame transfer over an fd (client library, tests). Reads
/// absorb partial delivery; a length prefix above `max_payload` is an
/// error. ReadFrame returns kNotFound on clean EOF between frames.
Result<Frame> ReadFrame(int fd, uint32_t max_payload = kMaxFramePayload);
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// kEvents payload helpers: u32 little-endian batch seq + notation text.
std::string EncodeEventsPayload(uint32_t seq, std::string_view text);
Result<std::pair<uint32_t, std::string_view>> DecodeEventsPayload(
    std::string_view payload);

}  // namespace adya::serve

#endif  // ADYA_SERVE_FRAMING_H_
