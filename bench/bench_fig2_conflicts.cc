// Reproduces Figure 2: "Definitions of direct conflicts between
// transactions" — each conflict kind demonstrated on a minimal history and
// detected by the conflict analyzer, plus timing of ComputeDependencies.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/conflicts.h"
#include "history/source.h"
#include "workload/workload.h"

namespace adya {
namespace {

using bench::Section;
using bench::Table;

struct ConflictDemo {
  const char* name;
  const char* description;
  const char* notation;
  const char* history;
  DepKind kind;
  TxnId from, to;
};

constexpr ConflictDemo kDemos[] = {
    {"Directly write-depends",
     "Ti installs x_i and Tj installs x's next version", "Ti --ww--> Tj",
     "w1(x1) c1 w2(x2) c2", DepKind::kWW, 1, 2},
    {"Directly read-depends (item)", "Ti installs x_i, Tj reads x_i",
     "Ti --wr--> Tj", "w1(x1) c1 r2(x1) c2", DepKind::kWRItem, 1, 2},
    {"Directly read-depends (predicate)",
     "x_i changes the matches of Tj's predicate read", "Ti --wr--> Tj",
     "relation Emp; object x in Emp; pred P on Emp: dept = \"Sales\";\n"
     "w1(x1, {dept: \"Sales\"}) c1 r2(P: x1) c2",
     DepKind::kWRPred, 1, 2},
    {"Directly anti-depends (item)",
     "Ti reads x_h and Tj installs x's next version", "Ti --rw--> Tj",
     "w0(x0) c0 r1(x0) c1 w2(x2) c2", DepKind::kRWItem, 1, 2},
    {"Directly anti-depends (predicate)",
     "Tj overwrites Ti's predicate read (changes its matches)",
     "Ti --rw--> Tj",
     "relation Emp; object x in Emp; pred P on Emp: dept = \"Sales\";\n"
     "r1(P: xinit) c1 w2(x2, {dept: \"Sales\"}) c2",
     DepKind::kRWPred, 1, 2},
};

void PrintFigure2() {
  Section("Figure 2 — definitions of direct conflicts, demonstrated");
  Table table({"Conflict", "Description (Tj conflicts on Ti)", "Edge",
               "Minimal history", "Detected"});
  for (const ConflictDemo& demo : kDemos) {
    auto h = LoadHistory(demo.history);
    bool found = false;
    if (h.ok()) {
      for (const Dependency& dep : ComputeDependencies(h->history)) {
        found |= dep.kind == demo.kind && dep.from == demo.from &&
                 dep.to == demo.to;
      }
    }
    std::string one_line = demo.history;
    for (char& c : one_line) {
      if (c == '\n') c = ' ';
    }
    table.AddRow({demo.name, demo.description, demo.notation, one_line,
                  found ? "yes" : "MISSING"});
  }
  table.Print();
}

void BM_ComputeDependencies(benchmark::State& state) {
  workload::RandomHistoryOptions options;
  options.seed = 7;
  options.num_txns = static_cast<int>(state.range(0));
  options.num_objects = options.num_txns / 2 + 1;
  options.ops_per_txn = 5;
  History h = workload::GenerateRandomHistory(options);
  size_t edges = 0;
  for (auto _ : state) {
    auto deps = ComputeDependencies(h);
    edges = deps.size();
    benchmark::DoNotOptimize(deps);
  }
  state.SetLabel(StrCat(options.num_txns, " txns, ", edges, " conflicts"));
}
BENCHMARK(BM_ComputeDependencies)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
