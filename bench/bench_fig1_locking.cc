// Reproduces Figure 1: "Consistency Levels and Locking ANSI-92 Isolation
// Levels" — which preventative phenomena each lock-based level excludes.
//
// Methodology: the locking engine (long/short read/write/predicate locks
// per Figure 1) runs a contended randomized workload at each level; we then
// scan the recorded interleavings for P0–P3. A phenomenon a level's locks
// proscribe must never occur; the weaker levels should exhibit it somewhere
// in the sweep. Timings: one op-throughput benchmark per level.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/preventative.h"
#include "workload/workload.h"

namespace adya {
namespace {

using bench::Section;
using bench::Table;
using engine::Database;
using engine::Scheme;

constexpr uint64_t kSeeds = 40;

struct LevelRow {
  IsolationLevel level;
  const char* figure1_name;
  const char* read_locks;
};

constexpr LevelRow kLevels[] = {
    {IsolationLevel::kPL1, "Degree 1 = Locking READ UNCOMMITTED", "none"},
    {IsolationLevel::kPL2, "Degree 2 = Locking READ COMMITTED",
     "short read locks"},
    {IsolationLevel::kPL299, "Locking REPEATABLE READ",
     "long item read locks, short phantom locks"},
    {IsolationLevel::kPL3, "Degree 3 = Locking SERIALIZABLE",
     "long read locks"},
};

void PrintFigure1() {
  Section("Figure 1 — locking levels vs preventative phenomena (counts over "
          + StrCat(kSeeds) + " contended workloads)");
  Table table({"Locking level", "Read locks", "P0", "P1", "P2", "P3",
               "proscribed & absent"});
  for (const LevelRow& row : kLevels) {
    int counts[4] = {0, 0, 0, 0};
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      auto db = Database::Create(Scheme::kLocking, Database::Options{});
      workload::WorkloadOptions options;
      options.seed = seed;
      options.levels = {row.level};
      options.num_txns = 16;
      options.num_keys = 4;  // high contention
      options.max_active = 4;
      workload::RunWorkload(*db, options);
      auto history = db->RecordedHistory();
      if (!history.ok()) continue;
      for (int p = 0; p < 4; ++p) {
        if (CheckPreventative(*history,
                              static_cast<PreventativePhenomenon>(p))
                .has_value()) {
          ++counts[p];
        }
      }
    }
    const auto& proscribed = ProscribedPreventative(
        row.level == IsolationLevel::kPL1 ? LockingDegree::kReadUncommitted
        : row.level == IsolationLevel::kPL2
            ? LockingDegree::kReadCommitted
        : row.level == IsolationLevel::kPL299
            ? LockingDegree::kRepeatableRead
            : LockingDegree::kSerializable);
    bool clean = true;
    for (PreventativePhenomenon p : proscribed) {
      clean &= counts[static_cast<int>(p)] == 0;
    }
    table.AddRow({row.figure1_name, row.read_locks, StrCat(counts[0]),
                  StrCat(counts[1]), StrCat(counts[2]), StrCat(counts[3]),
                  clean ? "yes" : "VIOLATED"});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): each level's proscribed phenomena occur 0 "
      "times;\nweaker levels exhibit the phenomena they permit.\n");
}

void BM_LockingWorkload(benchmark::State& state) {
  IsolationLevel level = static_cast<IsolationLevel>(state.range(0));
  uint64_t seed = 1;
  int64_t ops = 0;
  for (auto _ : state) {
    auto db = Database::Create(Scheme::kLocking, Database::Options{});
    workload::WorkloadOptions options;
    options.seed = seed++;
    options.levels = {level};
    options.num_txns = 32;
    options.num_keys = 8;
    workload::WorkloadStats stats = workload::RunWorkload(*db, options);
    ops += stats.operations;
  }
  state.SetItemsProcessed(ops);
  state.SetLabel(std::string(IsolationLevelName(level)));
}
BENCHMARK(BM_LockingWorkload)
    ->Arg(static_cast<int>(IsolationLevel::kPL1))
    ->Arg(static_cast<int>(IsolationLevel::kPL2))
    ->Arg(static_cast<int>(IsolationLevel::kPL299))
    ->Arg(static_cast<int>(IsolationLevel::kPL3));

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
