#ifndef ADYA_BENCH_BENCH_UTIL_H_
#define ADYA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace adya::bench {

/// Minimal fixed-width table printer for the paper-style tables the bench
/// binaries emit before their timing sections.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t i = 0; i < width.size(); ++i) {
        std::printf(" %-*s |", static_cast<int>(width[i]),
                    i < row.size() ? row[i].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (size_t w : width) std::printf("%s|", std::string(w + 2, '-').c_str());
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace adya::bench

#endif  // ADYA_BENCH_BENCH_UTIL_H_
