#ifndef ADYA_BENCH_BENCH_UTIL_H_
#define ADYA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/stats.h"

namespace adya::bench {

/// Shared --stats / --stats-out=FILE / --trace-out=FILE handling for the
/// bench binaries (the same flag names adya_stress takes). Construct before
/// benchmark::Initialize: recognized flags are consumed from argv so the
/// benchmark library never sees them. registry() is null when stats are off
/// — pass it straight into CheckerOptions::stats — and the snapshot is
/// exported when the object goes out of scope at the end of main (JSON to
/// stderr, or to the given files).
class BenchStats {
 public:
  BenchStats(int* argc, char** argv) {
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--stats") {
        enabled_ = true;
      } else if (arg.rfind("--stats-out=", 0) == 0) {
        enabled_ = true;
        stats_out_ = arg.substr(12);
      } else if (arg.rfind("--trace-out=", 0) == 0) {
        enabled_ = true;
        trace_out_ = arg.substr(12);
      } else {
        argv[kept++] = argv[i];
      }
    }
    *argc = kept;
  }

  ~BenchStats() {
    if (!enabled_) return;
    obs::StatsSnapshot snapshot = registry_.Snapshot();
    if (stats_out_.empty()) {
      std::fprintf(stderr, "%s\n", snapshot.ToJson().c_str());
    } else {
      WriteFile(stats_out_, snapshot.ToJson());
    }
    if (!trace_out_.empty()) {
      WriteFile(trace_out_, registry_.trace().ToJsonLines());
    }
  }

  obs::StatsRegistry* registry() { return enabled_ ? &registry_ : nullptr; }

 private:
  static void WriteFile(const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
      return;
    }
    std::fputs(content.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

  bool enabled_ = false;
  std::string stats_out_, trace_out_;
  obs::StatsRegistry registry_;
};

/// Shared --repeats=N (or "--repeats N") handling for the bench binaries.
/// Construct before benchmark::Initialize — the flag is consumed from argv.
/// Every BENCH JSON section reruns its measured pass count() times and
/// reports min/median per phase, so a checked-in baseline is not a single
/// noisy sample. Default 5; CI smoke uses --repeats 2.
class Repeats {
 public:
  Repeats(int* argc, char** argv, int default_count = 5)
      : count_(default_count) {
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--repeats=", 0) == 0) {
        count_ = std::atoi(arg.c_str() + 10);
      } else if (arg == "--repeats" && i + 1 < *argc) {
        count_ = std::atoi(argv[++i]);
      } else {
        argv[kept++] = argv[i];
      }
    }
    if (count_ < 1) count_ = 1;
    *argc = kept;
  }

  int count() const { return count_; }

 private:
  int count_;
};

/// min/median/p90 of one metric across the repeats of a measured pass.
/// p90 (nearest-rank) exists because parallel timings are noisier than
/// serial ones: min alone hides scheduling jitter, so checked-in parallel
/// baselines report the tail too.
struct RepeatStat {
  double min = 0;
  double median = 0;
  double p90 = 0;
};

/// Collects named samples repeat by repeat and summarizes each metric.
/// Usage: one Add(name, value) set per repeat, then Summary()/Json().
class RepeatSeries {
 public:
  void Add(const std::string& name, double value) {
    samples_[name].push_back(value);
  }

  std::map<std::string, RepeatStat> Summary() const {
    std::map<std::string, RepeatStat> out;
    for (const auto& [name, values] : samples_) {
      std::vector<double> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      RepeatStat s;
      s.min = sorted.front();
      size_t n = sorted.size();
      s.median = (n % 2 == 1) ? sorted[n / 2]
                              : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
      // Nearest-rank p90: ceil(0.9 * n), 1-based. n=1 degenerates to the
      // sample itself; n<=10 yields the max, which is the honest tail
      // estimate at bench repeat counts.
      s.p90 = sorted[(n * 9 + 9) / 10 - 1];
      out[name] = s;
    }
    return out;
  }

  /// `"name":{"min":…,"median":…,"p90":…},…` fragments for a BENCH JSON
  /// line, in the order the names were first added.
  static std::string Json(const RepeatStat& s) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"min\":%.1f,\"median\":%.1f,\"p90\":%.1f}", s.min,
                  s.median, s.p90);
    return buf;
  }

 private:
  std::map<std::string, std::vector<double>> samples_;
};

/// Latency summary fragment for a BENCH JSON line, built from a histogram
/// with the interpolated Quantile accessor (not bucket-floor Percentile),
/// so checked-in p50/p99 baselines do not snap to log-bucket boundaries.
inline std::string LatencyJson(const obs::Histogram& h) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,\"max\":%llu,"
                "\"count\":%llu}",
                static_cast<unsigned long long>(h.Quantile(0.50)),
                static_cast<unsigned long long>(h.Quantile(0.95)),
                static_cast<unsigned long long>(h.Quantile(0.99)),
                static_cast<unsigned long long>(h.max_value()),
                static_cast<unsigned long long>(h.count()));
  return buf;
}

/// Minimal fixed-width table printer for the paper-style tables the bench
/// binaries emit before their timing sections.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t i = 0; i < width.size(); ++i) {
        std::printf(" %-*s |", static_cast<int>(width[i]),
                    i < row.size() ? row[i].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (size_t w : width) std::printf("%s|", std::string(w + 2, '-').c_str());
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace adya::bench

#endif  // ADYA_BENCH_BENCH_UTIL_H_
