// Engine comparison: throughput and abort behavior of the three
// concurrency-control schemes across isolation levels — the implementation
// space the paper's definitions are designed to keep open. Includes a
// multi-threaded blocking-mode run of the locking engine.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.h"
#include "common/str_util.h"
#include "workload/workload.h"

namespace adya {
namespace {

using bench::Section;
using bench::Table;
using engine::Database;
using engine::ObjKey;
using engine::Scheme;

struct Config {
  Scheme scheme;
  IsolationLevel level;
};

const std::vector<Config>& Configs() {
  using L = IsolationLevel;
  static const auto* configs = new std::vector<Config>{
      {Scheme::kLocking, L::kPL1},      {Scheme::kLocking, L::kPL2},
      {Scheme::kLocking, L::kPL299},    {Scheme::kLocking, L::kPL3},
      {Scheme::kOptimistic, L::kPL2},   {Scheme::kOptimistic, L::kPL299},
      {Scheme::kOptimistic, L::kPL3},   {Scheme::kMultiversion, L::kPLSI},
  };
  return *configs;
}

void PrintAbortTable() {
  Section("Commit/abort behavior per scheme and level (20 seeds, contended "
          "workload)");
  Table table({"Scheme", "Level", "committed", "engine aborts",
               "voluntary aborts", "retries (lock waits)"});
  for (const Config& config : Configs()) {
    workload::WorkloadStats total;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      auto db = Database::Create(config.scheme, Database::Options{});
      workload::WorkloadOptions options;
      options.seed = seed;
      options.levels = {config.level};
      options.num_txns = 24;
      options.num_keys = 4;
      options.max_active = 4;
      auto stats = workload::RunWorkload(*db, options);
      total.committed += stats.committed;
      total.aborted_engine += stats.aborted_engine;
      total.aborted_voluntary += stats.aborted_voluntary;
      total.would_block_retries += stats.would_block_retries;
    }
    table.AddRow({std::string(SchemeName(config.scheme)),
                  std::string(IsolationLevelName(config.level)),
                  StrCat(total.committed), StrCat(total.aborted_engine),
                  StrCat(total.aborted_voluntary),
                  StrCat(total.would_block_retries)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: locking trades waiting (retries) for few aborts;\n"
      "optimistic/multiversion never wait but abort on validation/FCW\n"
      "conflicts, increasingly so at stronger levels.\n");
}

void BM_EngineWorkload(benchmark::State& state) {
  const Config& config = Configs()[static_cast<size_t>(state.range(0))];
  uint64_t seed = 1;
  int64_t ops = 0;
  for (auto _ : state) {
    auto db = Database::Create(config.scheme, Database::Options{});
    workload::WorkloadOptions options;
    options.seed = seed++;
    options.levels = {config.level};
    options.num_txns = 32;
    options.num_keys = 8;
    auto stats = workload::RunWorkload(*db, options);
    ops += stats.operations;
  }
  state.SetItemsProcessed(ops);
  state.SetLabel(StrCat(SchemeName(config.scheme), " @ ",
                        IsolationLevelName(config.level)));
}
BENCHMARK(BM_EngineWorkload)->DenseRange(0, 7);

/// Blocking mode under real threads: each thread runs read-modify-write
/// transactions over a small keyspace on the locking engine.
void BM_LockingThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  int64_t committed = 0;
  for (auto _ : state) {
    engine::Database::Options opts;
    opts.blocking = true;
    auto db = Database::Create(Scheme::kLocking, opts);
    RelationId rel = db->AddRelation("R");
    std::atomic<int64_t> ok{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&db, rel, t, &ok] {
        for (int i = 0; i < 30; ++i) {
          auto txn = db->Begin(IsolationLevel::kPL3);
          if (!txn.ok()) continue;
          ObjKey key{rel, StrCat("k", (t + i) % 3)};
          auto row = db->Read(*txn, key);
          if (!row.ok()) continue;  // deadlock victim: already aborted
          int64_t v = row->has_value()
                          ? (*row)->Get(kScalarAttr)->AsInt()
                          : 0;
          if (!db->Write(*txn, key, ScalarRow(Value(v + 1))).ok()) continue;
          if (db->Commit(*txn).ok()) ok.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    committed += ok.load();
  }
  state.SetItemsProcessed(committed);
  state.SetLabel(StrCat(threads, " threads, blocking 2PL"));
}
BENCHMARK(BM_LockingThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::PrintAbortTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
