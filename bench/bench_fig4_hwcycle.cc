// Reproduces Figure 4: the DSG of H_wcycle (§5.1) — the pure
// write-dependency cycle that G0 proscribes even at PL-1 — plus timing of
// the PL-1 (G0) check.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/checker_api.h"
#include "core/levels.h"
#include "core/paper_histories.h"
#include "history/format.h"
#include "workload/workload.h"

namespace adya {
namespace {

void PrintFigure4() {
  PaperHistory ph = MakeHWcycle();
  bench::Section("Figure 4 — DSG for H_wcycle (G0)");
  std::printf("History (paper notation):\n%s\n",
              FormatHistory(ph.history).c_str());
  Dsg dsg(ph.history);
  std::printf("DSG edges:        %s\n", dsg.EdgeSummary().c_str());
  std::printf("Paper (Figure 4): T1 --ww--> T2, T2 --ww--> T1\n\n");
  Checker checker(ph.history);
  auto g0 = checker.CheckPhenomenon(Phenomenon::kG0);
  std::printf("%s\n\n", g0.has_value() ? g0->description.c_str()
                                       : "G0 NOT DETECTED (unexpected)");
  Classification c = Classify(ph.history);
  std::printf("Classification: %s\n", c.Summary().c_str());
  std::printf("Paper's claim:  %s\n", ph.claim.c_str());
}

void BM_CheckPL1(benchmark::State& state) {
  workload::RandomHistoryOptions options;
  options.seed = 5;
  options.num_txns = static_cast<int>(state.range(0));
  options.random_version_order_prob = 0.8;  // stress adversarial orders
  History h = workload::GenerateRandomHistory(options);
  for (auto _ : state) {
    LevelCheckResult r = CheckLevel(h, IsolationLevel::kPL1);
    benchmark::DoNotOptimize(r.satisfied);
  }
}
BENCHMARK(BM_CheckPL1)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::PrintFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
