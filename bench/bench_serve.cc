// End-to-end adya_serve throughput and latency: an in-process Server on a
// loopback TCP port (and a Unix-domain socket section), N concurrent
// client sessions each streaming synthetic event batches, per-batch
// round-trip latency in a shared histogram. Each section prints one
// machine-readable line:
//
//   BENCH {"name":"serve_throughput","transport":"tcp","sessions":4,
//          "workers":4,"batches_per_session":…,"events_per_batch":…,
//          "repeats":…,"wall_us":{"min":…,"median":…},"events_per_s":…,
//          "batches_per_s":…,"latency_us":{"p50":…,"p95":…,"p99":…,
//          "max":…,"count":…}}
//
// The checked-in bench/BENCH_serve.json holds these lines for one
// reference machine; scripts/ci.sh validates the JSON shape (not the
// numbers — CI machines are noisy).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/str_util.h"
#include "obs/stats.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/stream_text.h"

namespace adya {
namespace {

int g_repeats = 5;

constexpr int kBatchesPerSession = 40;
constexpr int kEventsPerBatch = 64;
constexpr int kWorkers = 4;

struct PassResult {
  double wall_us = 0;
  uint64_t events = 0;
  uint64_t batches = 0;
};

/// One full pass: fresh server, `sessions` concurrent clients, everyone
/// streams kBatchesPerSession batches and closes. Latencies accumulate
/// into `latency` across passes (quantiles of all repeats).
PassResult OnePass(bool unix_transport, int sessions,
                   obs::Histogram* latency) {
  serve::ServeOptions options;
  options.workers = kWorkers;
  std::string unix_path;
  if (unix_transport) {
    unix_path = StrCat("/tmp/adya_bench_serve_", ::getpid(), ".sock");
    options.port = -1;
    options.unix_path = unix_path;
  }
  serve::Server server(options);
  Status started = server.Start();
  ADYA_CHECK_MSG(started.ok(), started.ToString());

  // Pre-generate every session's batches: generation stays off the clock.
  std::vector<std::vector<std::string>> batches(
      static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    serve::SyntheticLoad gen(1000 + static_cast<uint64_t>(s), 16,
                             kEventsPerBatch);
    for (int b = 0; b < kBatchesPerSession; ++b) {
      batches[static_cast<size_t>(s)].push_back(gen.NextBatch());
    }
  }

  PassResult result;
  std::atomic<uint64_t> events{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      Result<serve::Client> client =
          unix_transport ? serve::Client::ConnectUnix(unix_path)
                         : serve::Client::ConnectTcp("127.0.0.1",
                                                     server.port());
      ADYA_CHECK_MSG(client.ok(), client.status().ToString());
      ADYA_CHECK(client->Handshake().ok());
      ADYA_CHECK(client->Open(IsolationLevel::kPL3).ok());
      for (const std::string& text : batches[static_cast<size_t>(s)]) {
        auto t0 = std::chrono::steady_clock::now();
        Result<serve::BatchReply> reply = client->Certify(text);
        ADYA_CHECK_MSG(reply.ok(), reply.status().ToString());
        latency->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
        events.fetch_add(reply->events, std::memory_order_relaxed);
      }
      ADYA_CHECK(client->CloseSession().ok());
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  server.Shutdown();
  result.events = events.load();
  result.batches =
      static_cast<uint64_t>(sessions) * static_cast<uint64_t>(kBatchesPerSession);
  return result;
}

void RunSection(const char* transport, bool unix_transport, int sessions,
                benchmark::State& state) {
  for (auto _ : state) {
    bench::RepeatSeries series;
    obs::Histogram latency;
    uint64_t events = 0;
    uint64_t batches = 0;
    for (int r = 0; r < g_repeats; ++r) {
      PassResult pass = OnePass(unix_transport, sessions, &latency);
      series.Add("wall_us", pass.wall_us);
      events = pass.events;
      batches = pass.batches;
    }
    bench::RepeatStat wall = series.Summary().at("wall_us");
    double secs = wall.min / 1e6;
    std::printf(
        "BENCH {\"name\":\"serve_throughput\",\"transport\":\"%s\","
        "\"sessions\":%d,\"workers\":%d,\"batches_per_session\":%d,"
        "\"events_per_batch\":%d,\"repeats\":%d,\"wall_us\":%s,"
        "\"events_per_s\":%.1f,\"batches_per_s\":%.1f,\"latency_us\":%s}\n",
        transport, sessions, kWorkers, kBatchesPerSession, kEventsPerBatch,
        g_repeats, bench::RepeatSeries::Json(wall).c_str(),
        secs > 0 ? static_cast<double>(events) / secs : 0.0,
        secs > 0 ? static_cast<double>(batches) / secs : 0.0,
        bench::LatencyJson(latency).c_str());
    state.SetItemsProcessed(static_cast<int64_t>(events));
  }
}

void BM_ServeTcp(benchmark::State& state) {
  RunSection("tcp", false, static_cast<int>(state.range(0)), state);
}
BENCHMARK(BM_ServeTcp)->Arg(1)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ServeUnix(benchmark::State& state) {
  RunSection("unix", true, static_cast<int>(state.range(0)), state);
}
BENCHMARK(BM_ServeUnix)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::bench::BenchStats stats(&argc, argv);
  adya::bench::Repeats repeats(&argc, argv);
  adya::g_repeats = repeats.count();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
