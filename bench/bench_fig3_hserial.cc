// Reproduces Figure 3: the DSG of H_serial (§4.4.4) — edges and the
// resulting serialization order T1, T2, T3 — plus DSG-construction timing.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/dsg.h"
#include "core/paper_histories.h"
#include "history/format.h"
#include "workload/workload.h"

namespace adya {
namespace {

void PrintFigure3() {
  PaperHistory ph = MakeHSerial();
  bench::Section("Figure 3 — DSG for H_serial");
  std::printf("History (paper notation):\n%s\n",
              FormatHistory(ph.history).c_str());
  Dsg dsg(ph.history);
  std::printf("DSG edges:        %s\n", dsg.EdgeSummary().c_str());
  std::printf("Paper (Figure 3): T1 --ww--> T2, T1 --wr(item)--> T2, "
              "T1 --ww--> T3, T2 --wr(item)--> T3, T2 --rw(item)--> T3\n");
  auto order = dsg.SerializationOrder();
  std::vector<std::string> names;
  for (TxnId t : *order) names.push_back(StrCat("T", t));
  std::printf("Serialization order: %s (paper: T1, T2, T3)\n",
              StrJoin(names, ", ").c_str());
  std::printf("\nGraphviz:\n%s", dsg.ToDot().c_str());
}

void BM_DsgHSerial(benchmark::State& state) {
  PaperHistory ph = MakeHSerial();
  for (auto _ : state) {
    Dsg dsg(ph.history);
    benchmark::DoNotOptimize(dsg.graph().edge_count());
  }
}
BENCHMARK(BM_DsgHSerial);

void BM_DsgRandom(benchmark::State& state) {
  workload::RandomHistoryOptions options;
  options.seed = 3;
  options.num_txns = static_cast<int>(state.range(0));
  options.num_objects = options.num_txns;
  History h = workload::GenerateRandomHistory(options);
  for (auto _ : state) {
    Dsg dsg(h);
    benchmark::DoNotOptimize(dsg.graph().edge_count());
  }
  state.SetLabel(StrCat(options.num_txns, " txns"));
}
BENCHMARK(BM_DsgRandom)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
