// Reproduces Figure 6: "Summary of portable ANSI isolation levels" — the
// level lattice applied to every named history in the paper. Each cell says
// whether the history satisfies the level; the strongest-ANSI column matches
// the paper's per-history claims. Timing: full classification cost.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/levels.h"
#include "core/paper_histories.h"

namespace adya {
namespace {

using bench::Section;
using bench::Table;

constexpr IsolationLevel kColumns[] = {
    IsolationLevel::kPL1,     IsolationLevel::kPL2,
    IsolationLevel::kPLCS,    IsolationLevel::kPL2Plus,
    IsolationLevel::kPL299,   IsolationLevel::kPLSI,
    IsolationLevel::kPL3,
};

void PrintFigure6() {
  Section("Figure 6 — portable levels: proscribed phenomena");
  Table defs({"Level", "Phenomena disallowed"});
  for (IsolationLevel level : kColumns) {
    std::vector<std::string> names;
    for (Phenomenon p : ProscribedPhenomena(level)) {
      names.emplace_back(PhenomenonName(p));
    }
    defs.AddRow({std::string(IsolationLevelName(level)),
                 StrJoin(names, ", ")});
  }
  defs.Print();

  Section("Level matrix over every history in the paper");
  std::vector<std::string> header{"History", "Ref"};
  for (IsolationLevel level : kColumns) {
    header.emplace_back(IsolationLevelName(level));
  }
  header.emplace_back("strongest ANSI");
  Table table(header);
  for (const PaperHistory& ph : AllPaperHistories()) {
    Classification c = Classify(ph.history);
    std::vector<std::string> row{ph.name, ph.paper_ref};
    for (IsolationLevel level : kColumns) {
      row.emplace_back(c.Satisfies(level) ? "yes" : "no");
    }
    row.emplace_back(c.strongest_ansi.has_value()
                         ? std::string(IsolationLevelName(*c.strongest_ansi))
                         : "none");
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper's prose, for comparison:\n"
      "  H1, H2           : non-serializable (invariant violated) — fail "
      "PL-3\n"
      "  H1', H2'         : rejected by P1/P2 but serializable — pass PL-3\n"
      "  H_wcycle         : G0 — fails every level\n"
      "  H_pred_update    : allowed at PL-1; weak predicate guarantees\n"
      "  H_phantom        : permitted by PL-2.99, ruled out by PL-3\n");
}

void BM_ClassifyPaperHistory(benchmark::State& state) {
  auto histories = AllPaperHistories();
  const PaperHistory& ph = histories[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    Classification c = Classify(ph.history);
    benchmark::DoNotOptimize(c.violations.size());
  }
  state.SetLabel(ph.name);
}
BENCHMARK(BM_ClassifyPaperHistory)->DenseRange(0, 10);

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::PrintFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
