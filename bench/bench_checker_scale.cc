// Checker scalability (supports the claim that the definitions are usable
// as a practical standard): DSG construction and the full phenomena check
// as the history grows, plus the adversarial-version-order ablation from
// DESIGN.md §3.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "core/checker_api.h"
#include "core/levels.h"
#include "core/online.h"
#include "workload/workload.h"

namespace adya {
namespace {

/// Set from --stats before the benchmarks run; null = instrumentation off
/// (the default, and the configuration the regression gate measures).
obs::StatsRegistry* g_stats = nullptr;

/// Set from --repeats before the benchmarks run (bench::Repeats default).
int g_repeats = 5;

CheckerOptions FacadeOptions() {
  CheckerOptions options;
  options.stats = g_stats;
  return options;
}

History MakeHistory(int txns, double random_vorder, bool finalize = true) {
  workload::RandomHistoryOptions options;
  options.seed = 13;
  options.num_txns = txns;
  options.num_objects = txns / 2 + 1;
  options.ops_per_txn = 5;
  options.random_version_order_prob = random_vorder;
  options.finalize = finalize;
  return workload::GenerateRandomHistory(options);
}

void BM_DsgBuild(benchmark::State& state) {
  History h = MakeHistory(static_cast<int>(state.range(0)), 0.3);
  for (auto _ : state) {
    Dsg dsg(h);
    benchmark::DoNotOptimize(dsg.graph().edge_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(h.events().size()));
  state.SetLabel(StrCat(state.range(0), " txns, ", h.events().size(),
                        " events"));
}
BENCHMARK(BM_DsgBuild)->Arg(10)->Arg(50)->Arg(200)->Arg(1000);

void BM_FullPhenomenaCheck(benchmark::State& state) {
  History h = MakeHistory(static_cast<int>(state.range(0)), 0.3);
  for (auto _ : state) {
    Checker checker(h, FacadeOptions());
    auto all = checker.CheckAll();
    benchmark::DoNotOptimize(all.size());
  }
  state.SetLabel(StrCat(state.range(0), " txns"));
}
BENCHMARK(BM_FullPhenomenaCheck)->Arg(10)->Arg(50)->Arg(200)->Arg(1000);

void BM_ClassifyAllLevels(benchmark::State& state) {
  History h = MakeHistory(static_cast<int>(state.range(0)), 0.3);
  for (auto _ : state) {
    Classification c = Classify(h);
    benchmark::DoNotOptimize(c.strongest_ansi);
  }
  state.SetLabel(StrCat(state.range(0), " txns"));
}
BENCHMARK(BM_ClassifyAllLevels)->Arg(10)->Arg(50)->Arg(200)->Arg(1000);

// Ablation: does the version order's adversarialness change checking cost?
// (It changes the edge set, not the asymptotics — the shape should be
// flat-ish across the probability sweep.)
void BM_VersionOrderAblation(benchmark::State& state) {
  double prob = static_cast<double>(state.range(0)) / 100.0;
  History h = MakeHistory(200, prob);
  for (auto _ : state) {
    Checker checker(h, FacadeOptions());
    auto all = checker.CheckAll();
    benchmark::DoNotOptimize(all.size());
  }
  state.SetLabel(StrCat("random version order p=", prob));
}
BENCHMARK(BM_VersionOrderAblation)->Arg(0)->Arg(50)->Arg(100);

// Online (per-commit) certification vs one offline check at the end.
// OnlineChecker folds each commit into a persistent DSG (IncrementalChecker
// underneath), so per-commit enforcement now costs a small constant factor
// over the single offline pass instead of O(commits) full re-checks. Each
// cell prints a `BENCH {…}` JSON line with its median wall time.
void BM_OnlineVsOffline(benchmark::State& state) {
  History h = MakeHistory(static_cast<int>(state.range(0)), 0.0);
  bool online = state.range(1) != 0;
  for (auto _ : state) {
    if (online) {
      OnlineChecker checker(IsolationLevel::kPL3);
      History& live = checker.history();
      for (RelationId r = 0; r < h.relation_count(); ++r) {
        live.AddRelation(h.relation_name(r));
      }
      for (ObjectId o = 0; o < h.object_count(); ++o) {
        live.AddObject(h.object_name(o), h.object_relation(o));
      }
      for (const Event& e : h.events()) {
        auto fed = checker.Feed(e);
        benchmark::DoNotOptimize(fed.ok());
      }
    } else {
      CheckReport r = Check(h, IsolationLevel::kPL3, FacadeOptions());
      benchmark::DoNotOptimize(r.satisfied);
    }
  }
  {
    // Re-time --repeats passes outside the benchmark loop for the JSON line.
    bench::RepeatSeries series;
    for (int r = 0; r < g_repeats; ++r) {
      auto start = std::chrono::steady_clock::now();
      if (online) {
        OnlineChecker checker(IsolationLevel::kPL3);
        History& live = checker.history();
        for (RelationId rel = 0; rel < h.relation_count(); ++rel) {
          live.AddRelation(h.relation_name(rel));
        }
        for (ObjectId o = 0; o < h.object_count(); ++o) {
          live.AddObject(h.object_name(o), h.object_relation(o));
        }
        for (const Event& e : h.events()) {
          auto fed = checker.Feed(e);
          benchmark::DoNotOptimize(fed.ok());
        }
      } else {
        CheckReport report = Check(h, IsolationLevel::kPL3, FacadeOptions());
        benchmark::DoNotOptimize(report.satisfied);
      }
      series.Add("wall_us",
                 static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count()) /
                     1000.0);
    }
    std::printf(
        "BENCH {\"name\":\"online_vs_offline\",\"txns\":%d,"
        "\"mode\":\"%s\",\"repeats\":%d,\"wall_us\":%s}\n",
        static_cast<int>(state.range(0)), online ? "online" : "offline",
        g_repeats,
        bench::RepeatSeries::Json(series.Summary().at("wall_us")).c_str());
  }
  state.SetLabel(StrCat(state.range(0), " txns, ",
                        online ? "online (check per commit)"
                               : "offline (single check)"));
}
BENCHMARK(BM_OnlineVsOffline)
    ->Args({20, 0})
    ->Args({20, 1})
    ->Args({100, 0})
    ->Args({100, 1});

// Phase-level cost of one full CheckAll, measured with the obs phase
// timers (the sum of each checker.*_us histogram is the exact microseconds
// that pass spent in the phase). This is the section the checked-in CPU
// baseline bench/BENCH_checker_cpu.json records:
// conflict_cycle_us = conflicts_us + cycle_search_us is the layout-gate
// number. Each repeat finalizes a fresh copy of the (unfinalized) history
// so checker.finalize_us / checker.version_order_us are re-run and
// re-timed; the wall therefore spans Finalize + Checker + CheckAll, and
//   other_us = wall − finalize − version_order − conflicts − dsg_build
//              − phenomenon
// is the true unattributed residual (the disjoint top-level phases;
// cycle_search_us and witness_us nest inside the others and would double-
// count). Each size reruns --repeats times per thread count; min/median/p90
// land in the JSON. threads > 1 hands the facade a pool, which shards the
// intra-artifact passes — verdicts and witnesses stay bit-identical, so a
// threads row measures cost only.
void RunCheckerPhases(int repeats, const std::vector<int>& sizes,
                      const std::vector<int>& thread_counts) {
  bench::Section("checker phases (artifacts CheckAll, obs timer sums)");
  for (int txns : sizes) {
    const History unfinalized = MakeHistory(txns, 0.3, /*finalize=*/false);
    for (int threads : thread_counts) {
      std::unique_ptr<ThreadPool> pool =
          threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
      bench::RepeatSeries series;
      size_t event_count = 0;
      for (int r = 0; r < repeats; ++r) {
        obs::StatsRegistry registry;
        History h = unfinalized;
        CheckerOptions options;
        options.stats = &registry;
        auto start = std::chrono::steady_clock::now();
        {
          History::FinalizeOptions fin;
          fin.stats = &registry;
          fin.pool = pool.get();
          Status finalized = h.Finalize(fin);
          ADYA_CHECK_MSG(finalized.ok(), finalized.ToString());
        }
        Checker checker = pool != nullptr ? Checker(h, options, pool.get())
                                          : Checker(h, options);
        auto all = checker.CheckAll();
        benchmark::DoNotOptimize(all.size());
        double wall_us =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()) /
            1000.0;
        event_count = h.events().size();
        obs::StatsSnapshot snap = registry.Snapshot();
        auto sum_of = [&](const char* name) {
          auto it = snap.histograms.find(name);
          return it == snap.histograms.end()
                     ? 0.0
                     : static_cast<double>(it->second.sum);
        };
        double conflicts_us = sum_of("checker.conflicts_us");
        double cycle_us = sum_of("checker.cycle_search_us");
        double dsg_build_us = sum_of("checker.dsg_build_us");
        double finalize_us = sum_of("checker.finalize_us");
        double version_order_us = sum_of("checker.version_order_us");
        double phenomenon_us = sum_of("checker.phenomenon_us");
        series.Add("finalize_us", finalize_us);
        series.Add("version_order_us", version_order_us);
        series.Add("conflicts_us", conflicts_us);
        series.Add("cycle_search_us", cycle_us);
        series.Add("conflict_cycle_us", conflicts_us + cycle_us);
        series.Add("dsg_build_us", dsg_build_us);
        series.Add("phenomenon_us", phenomenon_us);
        series.Add("witness_us", sum_of("checker.witness_us"));
        series.Add("other_us", wall_us - finalize_us - version_order_us -
                                   conflicts_us - dsg_build_us -
                                   phenomenon_us);
        series.Add("wall_us", wall_us);
        // Sub-phase breakdown of the phenomenon pass (the rewrite's profile
        // surface): every checker.phenomenon.* histogram this run recorded.
        for (const auto& [name, hist] : snap.histograms) {
          if (name.rfind("checker.phenomenon.", 0) == 0) {
            series.Add(name.substr(8), static_cast<double>(hist.sum));
          }
        }
      }
      auto summary = series.Summary();
      // layout tags which checker-core data layout produced the line: "map"
      // was the ordered-map/BFS era (kept in the checked-in baseline for the
      // before/after comparison), "dense" is the dense-id/CSR/bitset core,
      // "artifacts" the shared-PhenomenonArtifacts phenomenon phase.
      std::string line = StrCat(
          "BENCH {\"name\":\"checker_phases\",\"layout\":\"artifacts\","
          "\"txns\":", txns, ",\"events\":", event_count,
          ",\"threads\":", threads, ",\"repeats\":", repeats);
      // Fixed keys first (the CI regression gate parses these), then the
      // checker.phenomenon.* sub-phase breakdown in map order.
      static constexpr const char* kFixed[] = {
          "finalize_us",   "version_order_us", "conflicts_us",
          "cycle_search_us", "conflict_cycle_us", "dsg_build_us",
          "phenomenon_us", "witness_us",       "other_us",
          "wall_us"};
      for (const char* key : kFixed) {
        line += StrCat(",\"", key, "\":",
                       bench::RepeatSeries::Json(summary.at(key)));
      }
      for (const auto& [key, stats] : summary) {
        if (key.rfind("phenomenon.", 0) == 0) {
          line += StrCat(",\"", key, "\":", bench::RepeatSeries::Json(stats));
        }
      }
      line += "}";
      std::printf("%s\n", line.c_str());
    }
  }
}

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::bench::BenchStats stats(&argc, argv);
  adya::bench::Repeats repeats(&argc, argv);
  // --phase-txns=a,b,c overrides the sizes the phase section measures
  // (CI smoke uses a small size; the checked-in baseline the full sweep);
  // --phase-threads=a,b adds a pool-width axis (1 = the pool-less serial
  // construction; each JSON line carries its "threads").
  std::vector<int> phase_txns = {1000, 4000, 10000};
  std::vector<int> phase_threads = {1};
  {
    auto parse_list = [](const std::string& arg, size_t prefix,
                         std::vector<int>* out) {
      out->clear();
      for (size_t pos = prefix; pos < arg.size();) {
        size_t comma = arg.find(',', pos);
        if (comma == std::string::npos) comma = arg.size();
        out->push_back(std::atoi(arg.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    };
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--phase-txns=", 0) == 0) {
        parse_list(arg, 13, &phase_txns);
      } else if (arg.rfind("--phase-threads=", 0) == 0) {
        parse_list(arg, 16, &phase_threads);
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
  }
  adya::g_stats = stats.registry();
  adya::g_repeats = repeats.count();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  adya::RunCheckerPhases(repeats.count(), phase_txns, phase_threads);
  benchmark::Shutdown();
  return 0;
}
