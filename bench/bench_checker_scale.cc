// Checker scalability (supports the claim that the definitions are usable
// as a practical standard): DSG construction and the full phenomena check
// as the history grows, plus the adversarial-version-order ablation from
// DESIGN.md §3.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/checker_api.h"
#include "core/levels.h"
#include "core/online.h"
#include "workload/workload.h"

namespace adya {
namespace {

/// Set from --stats before the benchmarks run; null = instrumentation off
/// (the default, and the configuration the regression gate measures).
obs::StatsRegistry* g_stats = nullptr;

CheckerOptions FacadeOptions() {
  CheckerOptions options;
  options.stats = g_stats;
  return options;
}

History MakeHistory(int txns, double random_vorder) {
  workload::RandomHistoryOptions options;
  options.seed = 13;
  options.num_txns = txns;
  options.num_objects = txns / 2 + 1;
  options.ops_per_txn = 5;
  options.random_version_order_prob = random_vorder;
  return workload::GenerateRandomHistory(options);
}

void BM_DsgBuild(benchmark::State& state) {
  History h = MakeHistory(static_cast<int>(state.range(0)), 0.3);
  for (auto _ : state) {
    Dsg dsg(h);
    benchmark::DoNotOptimize(dsg.graph().edge_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(h.events().size()));
  state.SetLabel(StrCat(state.range(0), " txns, ", h.events().size(),
                        " events"));
}
BENCHMARK(BM_DsgBuild)->Arg(10)->Arg(50)->Arg(200)->Arg(1000);

void BM_FullPhenomenaCheck(benchmark::State& state) {
  History h = MakeHistory(static_cast<int>(state.range(0)), 0.3);
  for (auto _ : state) {
    Checker checker(h, FacadeOptions());
    auto all = checker.CheckAll();
    benchmark::DoNotOptimize(all.size());
  }
  state.SetLabel(StrCat(state.range(0), " txns"));
}
BENCHMARK(BM_FullPhenomenaCheck)->Arg(10)->Arg(50)->Arg(200)->Arg(1000);

void BM_ClassifyAllLevels(benchmark::State& state) {
  History h = MakeHistory(static_cast<int>(state.range(0)), 0.3);
  for (auto _ : state) {
    Classification c = Classify(h);
    benchmark::DoNotOptimize(c.strongest_ansi);
  }
  state.SetLabel(StrCat(state.range(0), " txns"));
}
BENCHMARK(BM_ClassifyAllLevels)->Arg(10)->Arg(50)->Arg(200)->Arg(1000);

// Ablation: does the version order's adversarialness change checking cost?
// (It changes the edge set, not the asymptotics — the shape should be
// flat-ish across the probability sweep.)
void BM_VersionOrderAblation(benchmark::State& state) {
  double prob = static_cast<double>(state.range(0)) / 100.0;
  History h = MakeHistory(200, prob);
  for (auto _ : state) {
    Checker checker(h, FacadeOptions());
    auto all = checker.CheckAll();
    benchmark::DoNotOptimize(all.size());
  }
  state.SetLabel(StrCat("random version order p=", prob));
}
BENCHMARK(BM_VersionOrderAblation)->Arg(0)->Arg(50)->Arg(100);

// Online (per-commit) certification vs one offline check at the end.
// OnlineChecker folds each commit into a persistent DSG (IncrementalChecker
// underneath), so per-commit enforcement now costs a small constant factor
// over the single offline pass instead of O(commits) full re-checks. Each
// cell prints a `BENCH {…}` JSON line with its median wall time.
void BM_OnlineVsOffline(benchmark::State& state) {
  History h = MakeHistory(static_cast<int>(state.range(0)), 0.0);
  bool online = state.range(1) != 0;
  for (auto _ : state) {
    if (online) {
      OnlineChecker checker(IsolationLevel::kPL3);
      History& live = checker.history();
      for (RelationId r = 0; r < h.relation_count(); ++r) {
        live.AddRelation(h.relation_name(r));
      }
      for (ObjectId o = 0; o < h.object_count(); ++o) {
        live.AddObject(h.object_name(o), h.object_relation(o));
      }
      for (const Event& e : h.events()) {
        auto fed = checker.Feed(e);
        benchmark::DoNotOptimize(fed.ok());
      }
    } else {
      CheckReport r = Check(h, IsolationLevel::kPL3, FacadeOptions());
      benchmark::DoNotOptimize(r.satisfied);
    }
  }
  {
    // Re-time one pass outside the benchmark loop for the JSON line.
    auto start = std::chrono::steady_clock::now();
    if (online) {
      OnlineChecker checker(IsolationLevel::kPL3);
      History& live = checker.history();
      for (RelationId r = 0; r < h.relation_count(); ++r) {
        live.AddRelation(h.relation_name(r));
      }
      for (ObjectId o = 0; o < h.object_count(); ++o) {
        live.AddObject(h.object_name(o), h.object_relation(o));
      }
      for (const Event& e : h.events()) {
        auto fed = checker.Feed(e);
        benchmark::DoNotOptimize(fed.ok());
      }
    } else {
      CheckReport r = Check(h, IsolationLevel::kPL3, FacadeOptions());
      benchmark::DoNotOptimize(r.satisfied);
    }
    double wall_us =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()) /
        1000.0;
    std::printf(
        "BENCH {\"name\":\"online_vs_offline\",\"txns\":%d,"
        "\"mode\":\"%s\",\"wall_us\":%.1f}\n",
        static_cast<int>(state.range(0)), online ? "online" : "offline",
        wall_us);
  }
  state.SetLabel(StrCat(state.range(0), " txns, ",
                        online ? "online (check per commit)"
                               : "offline (single check)"));
}
BENCHMARK(BM_OnlineVsOffline)
    ->Args({20, 0})
    ->Args({20, 1})
    ->Args({100, 0})
    ->Args({100, 1});

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::bench::BenchStats stats(&argc, argv);
  adya::g_stats = stats.registry();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
