// Reproduces Figure 5: the DSG of H_phantom (§5.4) — the predicate
// anti-dependency cycle that separates PL-2.99 from PL-3 — plus timing of
// the predicate-conflict analysis.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/checker_api.h"
#include "core/levels.h"
#include "core/paper_histories.h"
#include "history/builder.h"
#include "history/format.h"

namespace adya {
namespace {

void PrintFigure5() {
  PaperHistory ph = MakeHPhantom();
  bench::Section("Figure 5 — DSG for H_phantom");
  std::printf("History (paper notation):\n%s\n",
              FormatHistory(ph.history).c_str());
  Dsg dsg(ph.history);
  std::printf("DSG edges: %s\n", dsg.EdgeSummary().c_str());
  std::printf(
      "Paper (Figure 5, T0 omitted there): T1 --predicate-rw--> T2, "
      "T2 --wr--> T1\n\n");
  Classification c = Classify(ph.history);
  std::printf("Classification: %s\n", c.Summary().c_str());
  std::printf("PL-2.99: %s   PL-3: %s   (paper: permitted by PL-2.99, "
              "ruled out by PL-3)\n",
              c.Satisfies(IsolationLevel::kPL299) ? "satisfied" : "violated",
              c.Satisfies(IsolationLevel::kPL3) ? "satisfied" : "violated");
  Checker checker(ph.history);
  if (auto g2 = checker.CheckPhenomenon(Phenomenon::kG2)) {
    std::printf("\n%s\n", g2->description.c_str());
  }
}

/// Scales the phantom scenario: one auditor predicate-reads a department of
/// `n` employees while an inserter adds one — predicate conflict analysis
/// must scan every tuple's version-set entry.
void BM_PhantomScale(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  HistoryBuilder b;
  b.Relation("Emp");
  b.Pred("P", "dept = \"Sales\"", {"Emp"});
  std::vector<std::string> vset;
  for (int i = 0; i < n; ++i) {
    std::string name = StrCat("e", StrCat(i));
    b.Object(name, "Emp");
    b.W(1, name, Row{{"dept", Value("Sales")}, {"sal", Value(10)}});
    vset.push_back(name + "@1");
  }
  b.W(1, "Sum", 10 * n).Commit(1);
  b.PredR(2, "P", vset);
  b.R(3, "Sum", 1);
  b.Object("z", "Emp");
  b.W(3, "z", Row{{"dept", Value("Sales")}, {"sal", Value(10)}});
  b.W(3, "Sum", 10 * (n + 1));
  b.Commit(3);
  b.R(2, "Sum", 3).Commit(2);
  auto h = b.Build();
  ADYA_CHECK(h.ok());
  for (auto _ : state) {
    LevelCheckResult r = CheckLevel(*h, IsolationLevel::kPL3);
    benchmark::DoNotOptimize(r.satisfied);
    ADYA_CHECK(!r.satisfied);  // the phantom must be caught at every scale
  }
  state.SetLabel(StrCat(n, " employees"));
}
BENCHMARK(BM_PhantomScale)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::PrintFigure5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
