// Incremental online certification vs naive re-checking: the tentpole
// claim that folding each commit into a persistent DSG makes streaming
// certification O(delta) per commit instead of O(history).
//
// Two numbers matter and both are printed as machine-readable `BENCH {…}`
// JSON lines:
//
//   BENCH {"name":"online_incremental","txns":512,"events":3000,
//          "repeats":5,"incremental_wall_us":{"min":…,"median":…},
//          "naive_wall_us":{"min":…,"median":…},"speedup":…,
//          "per_commit_us":[q1,q2,q3,q4]}
//
// - speedup (of the min wall times over --repeats passes): a full stream
//   through IncrementalChecker vs the naive baseline (copy the prefix,
//   finalize, run the offline checker at every commit — exactly what
//   OnlineChecker did before it became a facade over IncrementalChecker).
//   Must be >= 10x at 512+ txns.
// - per_commit_us: mean per-commit cost in each quarter of the stream.
//   Flat-ish quarters show the per-commit cost does not grow with the
//   length of the already-certified prefix.
//
// The bounded-memory companion claim — the certified-stable-prefix GC of
// DESIGN.md §12 keeps a long-running stream's footprint flat instead of
// growing with history length — is measured by BM_OnlineGcBoundedMemory
// over a serve-style synthetic stream, GC on vs off:
//
//   BENCH {"name":"online_gc","commits":…,"events":…,"repeats":…,
//          "gc":{"wall_us":{…},"peak_rss_kb":…,"live_events":…,
//                "gc_runs":…,"gc_freed_events":…},
//          "nogc":{"wall_us":{…},"peak_rss_kb":…,"live_events":…}}
//
// live_events is the checker's retained-event count after the pass (the
// deterministic memory proxy: bounded with GC, equal to the whole stream
// without); peak_rss_kb samples /proc/self/statm across the pass.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/incremental.h"
#include "core/levels.h"
#include "history/parser.h"
#include "serve/stream_text.h"
#include "workload/workload.h"

namespace adya {
namespace {

/// Set from --stats before the benchmarks run; null = instrumentation off
/// (the default, and the configuration the regression gate measures).
obs::StatsRegistry* g_stats = nullptr;

/// Set from --repeats before the benchmarks run (bench::Repeats default).
int g_repeats = 5;

History MakeStream(int txns) {
  workload::RandomHistoryOptions options;
  options.seed = 13;
  options.num_txns = txns;
  options.num_objects = txns / 2 + 1;
  options.ops_per_txn = 5;
  options.realizable = true;  // commit-order installs: streamable as-is
  return workload::GenerateRandomHistory(options);
}

void CloneUniverse(History& live, const History& h) {
  for (RelationId r = 0; r < h.relation_count(); ++r) {
    live.AddRelation(h.relation_name(r));
  }
  for (ObjectId o = 0; o < h.object_count(); ++o) {
    live.AddObject(h.object_name(o), h.object_relation(o));
  }
  for (PredicateId p = 0; p < h.predicate_count(); ++p) {
    live.AddPredicate(h.predicate_name(p), h.predicate_ptr(p),
                      h.predicate_relations(p));
  }
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1000.0;
}

/// One full pass through the incremental checker; returns wall micros.
double IncrementalPass(const History& h) {
  auto start = std::chrono::steady_clock::now();
  IncrementalChecker checker(IsolationLevel::kPL3, g_stats);
  CloneUniverse(checker.history(), h);
  for (const Event& e : h.events()) {
    auto fed = checker.Feed(e);
    benchmark::DoNotOptimize(fed.ok());
  }
  return MicrosSince(start);
}

/// The pre-incremental online checker: copy the prefix, finalize, run the
/// offline checker at every commit. Returns wall micros for a full pass.
double NaivePass(const History& h) {
  auto start = std::chrono::steady_clock::now();
  History live;
  CloneUniverse(live, h);
  for (const Event& e : h.events()) {
    live.Append(e);
    if (e.type != EventType::kCommit) continue;
    History prefix = live;
    if (!prefix.Finalize().ok()) continue;
    LevelCheckResult r = CheckLevel(prefix, IsolationLevel::kPL3);
    benchmark::DoNotOptimize(r.satisfied);
  }
  return MicrosSince(start);
}

void BM_OnlineIncremental(benchmark::State& state) {
  int txns = static_cast<int>(state.range(0));
  History h = MakeStream(txns);
  for (auto _ : state) {
    IncrementalChecker checker(IsolationLevel::kPL3, g_stats);
    CloneUniverse(checker.history(), h);
    for (const Event& e : h.events()) {
      auto fed = checker.Feed(e);
      benchmark::DoNotOptimize(fed.ok());
    }
  }

  // Flatness probe: mean per-commit cost in each quarter of one pass.
  size_t n = h.events().size();
  double quarter_us[4] = {0, 0, 0, 0};
  size_t quarter_commits[4] = {0, 0, 0, 0};
  {
    IncrementalChecker checker(IsolationLevel::kPL3, g_stats);
    CloneUniverse(checker.history(), h);
    for (size_t q = 0; q < 4; ++q) {
      size_t begin = n * q / 4, end = n * (q + 1) / 4;
      auto start = std::chrono::steady_clock::now();
      for (size_t i = begin; i < end; ++i) {
        const Event& e = h.event(static_cast<EventId>(i));
        if (e.type == EventType::kCommit) ++quarter_commits[q];
        auto fed = checker.Feed(e);
        benchmark::DoNotOptimize(fed.ok());
      }
      quarter_us[q] = MicrosSince(start);
    }
  }
  bench::RepeatSeries series;
  for (int r = 0; r < g_repeats; ++r) {
    series.Add("incremental_wall_us", IncrementalPass(h));
    series.Add("naive_wall_us", NaivePass(h));
  }
  auto summary = series.Summary();
  bench::RepeatStat incremental = summary.at("incremental_wall_us");
  bench::RepeatStat naive = summary.at("naive_wall_us");
  double speedup = incremental.min > 0 ? naive.min / incremental.min : 0;
  std::printf(
      "BENCH {\"name\":\"online_incremental\",\"txns\":%d,\"events\":%zu,"
      "\"repeats\":%d,\"incremental_wall_us\":%s,\"naive_wall_us\":%s,"
      "\"speedup\":%.2f,\"per_commit_us\":[%.2f,%.2f,%.2f,%.2f]}\n",
      txns, n, g_repeats, bench::RepeatSeries::Json(incremental).c_str(),
      bench::RepeatSeries::Json(naive).c_str(), speedup,
      quarter_commits[0] ? quarter_us[0] / quarter_commits[0] : 0,
      quarter_commits[1] ? quarter_us[1] / quarter_commits[1] : 0,
      quarter_commits[2] ? quarter_us[2] / quarter_commits[2] : 0,
      quarter_commits[3] ? quarter_us[3] / quarter_commits[3] : 0);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(StrCat(txns, " txns, ", n, " events"));
}
BENCHMARK(BM_OnlineIncremental)
    ->Arg(128)
    ->Arg(512)
    ->Arg(1024)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Resident set size in KiB from /proc/self/statm (0 if unreadable).
uint64_t RssKb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0, resident = 0;
  int got = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<uint64_t>(page > 0 ? page : 4096) / 1024;
}

struct GcPassResult {
  double wall_us = 0;
  uint64_t peak_rss_kb = 0;
  uint64_t live_events = 0;
  uint64_t gc_runs = 0;
  uint64_t gc_freed_events = 0;
};

/// Streams `commits` commits of a serve-style synthetic load through one
/// IncrementalChecker, sampling RSS every few thousand commits.
GcPassResult GcPass(uint64_t commits, const GcOptions& gc) {
  GcPassResult out;
  auto start = std::chrono::steady_clock::now();
  IncrementalChecker checker(IsolationLevel::kPL3, g_stats, gc);
  StreamParser parser(&checker.history());
  serve::SyntheticLoad load(/*seed=*/29, /*objects=*/32,
                            /*events_per_batch=*/256, /*write_skew_every=*/0);
  uint64_t seen = 0;
  uint64_t next_sample = 0;
  out.peak_rss_kb = RssKb();
  while (seen < commits) {
    Status s = parser.Feed(load.NextBatch(), [&](const Event& e) -> Status {
      auto fed = checker.Feed(e);
      benchmark::DoNotOptimize(fed.ok());
      if (e.type == EventType::kCommit) ++seen;
      return Status::OK();
    });
    if (!s.ok()) break;
    if (seen >= next_sample) {
      out.peak_rss_kb = std::max(out.peak_rss_kb, RssKb());
      next_sample = seen + 4096;
    }
  }
  out.wall_us = MicrosSince(start);
  out.peak_rss_kb = std::max(out.peak_rss_kb, RssKb());
  out.live_events = checker.history().events().size();
  out.gc_runs = checker.gc_runs();
  out.gc_freed_events = checker.gc_freed_events();
  return out;
}

void BM_OnlineGcBoundedMemory(benchmark::State& state) {
  const uint64_t commits = static_cast<uint64_t>(state.range(0));
  GcOptions gc_on;
  gc_on.enabled = true;
  gc_on.watermark_interval = 1024;
  gc_on.min_window_events = 8192;
  const GcOptions gc_off;  // disabled

  for (auto _ : state) {
    GcPassResult r = GcPass(commits, gc_on);
    benchmark::DoNotOptimize(r.live_events);
  }

  bench::RepeatSeries series;
  GcPassResult with_gc, without_gc;
  for (int r = 0; r < g_repeats; ++r) {
    with_gc = GcPass(commits, gc_on);
    series.Add("gc_wall_us", with_gc.wall_us);
    without_gc = GcPass(commits, gc_off);
    series.Add("nogc_wall_us", without_gc.wall_us);
  }
  auto summary = series.Summary();
  uint64_t events = without_gc.live_events;  // whole stream retained
  std::printf(
      "BENCH {\"name\":\"online_gc\",\"commits\":%llu,\"events\":%llu,"
      "\"repeats\":%d,\"gc\":{\"wall_us\":%s,\"peak_rss_kb\":%llu,"
      "\"live_events\":%llu,\"gc_runs\":%llu,\"gc_freed_events\":%llu},"
      "\"nogc\":{\"wall_us\":%s,\"peak_rss_kb\":%llu,"
      "\"live_events\":%llu}}\n",
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(events), g_repeats,
      bench::RepeatSeries::Json(summary.at("gc_wall_us")).c_str(),
      static_cast<unsigned long long>(with_gc.peak_rss_kb),
      static_cast<unsigned long long>(with_gc.live_events),
      static_cast<unsigned long long>(with_gc.gc_runs),
      static_cast<unsigned long long>(with_gc.gc_freed_events),
      bench::RepeatSeries::Json(summary.at("nogc_wall_us")).c_str(),
      static_cast<unsigned long long>(without_gc.peak_rss_kb),
      static_cast<unsigned long long>(without_gc.live_events));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(commits));
  state.SetLabel(StrCat(commits, " commits, gc watermark ",
                        gc_on.watermark_interval, ", window ",
                        gc_on.min_window_events));
}
BENCHMARK(BM_OnlineGcBoundedMemory)
    ->Arg(50000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::bench::BenchStats stats(&argc, argv);
  adya::bench::Repeats repeats(&argc, argv);
  adya::g_stats = stats.registry();
  adya::g_repeats = repeats.count();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
