// Parallel certification core: serial vs parallel checking over a threads ×
// history-size grid. Each grid cell also prints one machine-readable
// `BENCH {…}` JSON line (wall time over --repeats measured passes and
// speedup vs the threads=1 cell of the same size), so a trajectory file can
// be grepped out of the run:
//
//   BENCH {"name":"checker_parallel","txns":1000,"threads":4,
//          "repeats":5,"wall_us":{"min":1234.5,"median":1301.2},
//          "speedup":2.31}
//
// Speedups require real cores; on a single-CPU box the grid still validates
// that the parallel path computes identical results, it just won't go
// faster.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "core/checker_api.h"
#include "core/parallel.h"
#include "workload/workload.h"

namespace adya {
namespace {

/// Set from --stats before the benchmarks run; null = instrumentation off.
obs::StatsRegistry* g_stats = nullptr;

/// Set from --repeats before the benchmarks run (bench::Repeats default).
int g_repeats = 5;

CheckerOptions ParallelOptions(int threads) {
  CheckerOptions options;
  options.mode = CheckMode::kParallel;
  options.threads = threads;
  options.stats = g_stats;
  return options;
}

History MakeHistory(int txns) {
  workload::RandomHistoryOptions options;
  options.seed = 13;
  options.num_txns = txns;
  options.num_objects = txns / 2 + 1;
  options.ops_per_txn = 5;
  options.random_version_order_prob = 0.3;
  return workload::GenerateRandomHistory(options);
}

/// Minimum wall time of the threads=1 cell per size, recorded so the
/// parallel cells can report their speedup. Benchmarks run sequentially in
/// registration order, so the serial cell of each size runs first.
double* BaselineSlot(int txns) {
  static std::map<int, double> baselines;
  return &baselines[txns];
}

void BM_ParallelCheckAll(benchmark::State& state) {
  int txns = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  History h = MakeHistory(txns);
  CheckerOptions options = ParallelOptions(threads);
  // The pool outlives the timing loop: thread startup is a one-time cost a
  // long-lived certifier amortizes, so it is not what this grid measures.
  ThreadPool pool(threads);
  for (auto _ : state) {
    Checker checker(h, options, threads > 1 ? &pool : nullptr);
    auto all = checker.CheckAll();
    benchmark::DoNotOptimize(all.size());
  }
  // Re-time --repeats iterations outside the benchmark loop for the JSON
  // line (state's timings are not readable from inside the benchmark).
  bench::RepeatSeries series;
  for (int r = 0; r < g_repeats; ++r) {
    auto start = std::chrono::steady_clock::now();
    Checker checker(h, options, threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(checker.CheckAll().size());
    series.Add("wall_us",
               static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count()) /
                   1000.0);
  }
  bench::RepeatStat wall = series.Summary().at("wall_us");
  double* baseline = BaselineSlot(txns);
  if (threads == 1) *baseline = wall.min;
  double speedup = (*baseline > 0 && wall.min > 0) ? *baseline / wall.min : 0;
  std::printf(
      "BENCH {\"name\":\"checker_parallel\",\"txns\":%d,\"threads\":%d,"
      "\"repeats\":%d,\"wall_us\":%s,\"speedup\":%.2f}\n",
      txns, threads, g_repeats, bench::RepeatSeries::Json(wall).c_str(),
      speedup);
  state.SetLabel(StrCat(txns, " txns, ", threads, " threads"));
}
BENCHMARK(BM_ParallelCheckAll)
    ->ArgsProduct({{50, 200, 1000}, {1, 2, 4, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ParallelDsgBuild(benchmark::State& state) {
  int txns = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  History h = MakeHistory(txns);
  ThreadPool pool(threads);
  for (auto _ : state) {
    Dsg dsg(h, ConflictOptions(), threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(dsg.graph().edge_count());
  }
  state.SetLabel(StrCat(txns, " txns, ", threads, " threads"));
}
BENCHMARK(BM_ParallelDsgBuild)
    ->ArgsProduct({{200, 1000}, {1, 2, 4, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// The batched certification shape without an engine: CheckLevel at PL-3
/// over growing prefixes, serial vs fanned over the pool.
void BM_ParallelCheckLevel(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  History h = MakeHistory(500);
  CheckerOptions options = ParallelOptions(threads);
  ThreadPool pool(threads);
  for (auto _ : state) {
    Checker checker(h, options, threads > 1 ? &pool : nullptr);
    CheckReport r = checker.Check(IsolationLevel::kPL3);
    benchmark::DoNotOptimize(r.satisfied);
  }
  state.SetLabel(StrCat("PL-3, ", threads, " threads"));
}
BENCHMARK(BM_ParallelCheckLevel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Intra-artifact parallelism at scale: the serial-mode facade (one shared
// PhenomenonArtifacts pass) handed a pool, which shards the CSR build, SCC
// decomposition, cycle scans and version-order construction internally.
// This is the tentpole grid bench/BENCH_checker_parallel.json records —
// sizes large enough (100k/1M txns) that the per-shard work dwarfs the
// fork/join cost. Gated behind --parallel-txns because a 1M-txn row takes
// tens of seconds per cell; the default run skips it.
void RunArtifactsGrid(int repeats, const std::vector<int>& sizes,
                      const std::vector<int>& thread_counts) {
  if (sizes.empty()) return;
  bench::Section("artifacts-layout parallel grid (serial mode + pool)");
  for (int txns : sizes) {
    History h = MakeHistory(txns);
    double baseline = 0;
    for (int threads : thread_counts) {
      std::unique_ptr<ThreadPool> pool =
          threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
      CheckerOptions options;
      options.stats = g_stats;
      bench::RepeatSeries series;
      for (int r = 0; r < repeats; ++r) {
        auto start = std::chrono::steady_clock::now();
        Checker checker = pool != nullptr ? Checker(h, options, pool.get())
                                          : Checker(h, options);
        benchmark::DoNotOptimize(checker.CheckAll().size());
        series.Add("wall_us",
                   static_cast<double>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count()) /
                       1000.0);
      }
      bench::RepeatStat wall = series.Summary().at("wall_us");
      if (threads == thread_counts.front()) baseline = wall.min;
      double speedup =
          (baseline > 0 && wall.min > 0) ? baseline / wall.min : 0;
      std::printf(
          "BENCH {\"name\":\"checker_artifacts_parallel\","
          "\"layout\":\"artifacts\",\"txns\":%d,\"events\":%zu,"
          "\"threads\":%d,\"repeats\":%d,\"wall_us\":%s,\"speedup\":%.2f}\n",
          txns, h.events().size(), threads, repeats,
          bench::RepeatSeries::Json(wall).c_str(), speedup);
    }
  }
}

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::bench::BenchStats stats(&argc, argv);
  adya::bench::Repeats repeats(&argc, argv);
  // --parallel-txns=a,b turns on the artifacts-layout grid at those sizes;
  // --parallel-threads=a,b overrides its pool widths (first entry is the
  // speedup baseline; default 1,2,4,8).
  std::vector<int> grid_txns;
  std::vector<int> grid_threads = {1, 2, 4, 8};
  {
    auto parse_list = [](const std::string& arg, size_t prefix,
                         std::vector<int>* out) {
      out->clear();
      for (size_t pos = prefix; pos < arg.size();) {
        size_t comma = arg.find(',', pos);
        if (comma == std::string::npos) comma = arg.size();
        out->push_back(std::atoi(arg.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    };
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--parallel-txns=", 0) == 0) {
        parse_list(arg, 16, &grid_txns);
      } else if (arg.rfind("--parallel-threads=", 0) == 0) {
        parse_list(arg, 19, &grid_threads);
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
  }
  adya::g_stats = stats.registry();
  adya::g_repeats = repeats.count();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  adya::RunArtifactsGrid(repeats.count(), grid_txns, grid_threads);
  benchmark::Shutdown();
  return 0;
}
