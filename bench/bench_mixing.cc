// §5.5, the Mixing Theorem, quantitatively: mixed-level workloads on the
// locking engine are always mixing-correct, and the MSG prunes edges that
// the full DSG would keep. Timing: mixing check cost.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/dsg.h"
#include "core/msg.h"
#include "workload/workload.h"

namespace adya {
namespace {

using bench::Section;
using bench::Table;
using engine::Database;
using engine::Scheme;

void PrintMixing() {
  Section("Mixing Theorem — mixed-level workloads on the locking engine");
  Table table({"Seeds", "mixing-correct", "avg DSG edges", "avg MSG edges",
               "edges pruned by level info"});
  constexpr int kSeeds = 30;
  int correct = 0;
  size_t dsg_edges = 0, msg_edges = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto db = Database::Create(Scheme::kLocking, Database::Options{});
    workload::WorkloadOptions options;
    options.seed = seed;
    options.levels = {IsolationLevel::kPL1, IsolationLevel::kPL2,
                      IsolationLevel::kPL299, IsolationLevel::kPL3};
    options.num_txns = 20;
    options.num_keys = 4;
    workload::RunWorkload(*db, options);
    auto history = db->RecordedHistory();
    if (!history.ok()) continue;
    auto mix = CheckMixingCorrect(*history);
    if (mix.ok() && mix->mixing_correct) ++correct;
    Dsg dsg(*history);
    auto msg = Msg::Build(*history);
    dsg_edges += dsg.graph().edge_count();
    if (msg.ok()) msg_edges += msg->graph().edge_count();
  }
  double avg_dsg = static_cast<double>(dsg_edges) / kSeeds;
  double avg_msg = static_cast<double>(msg_edges) / kSeeds;
  table.AddRow({StrCat(kSeeds), StrCat(correct, " / ", kSeeds),
                StrCat(avg_dsg), StrCat(avg_msg),
                StrCat(100.0 * (avg_dsg - avg_msg) / avg_dsg, "%")});
  table.Print();
  std::printf(
      "\nExpected shape: every run mixing-correct (the engine honors each\n"
      "transaction's own level), and the MSG strictly smaller than the DSG\n"
      "(lower-level transactions waive read/anti edges).\n");
}

void BM_CheckMixingCorrect(benchmark::State& state) {
  auto db = Database::Create(Scheme::kLocking, Database::Options{});
  workload::WorkloadOptions options;
  options.seed = 5;
  options.levels = {IsolationLevel::kPL1, IsolationLevel::kPL2,
                    IsolationLevel::kPL299, IsolationLevel::kPL3};
  options.num_txns = static_cast<int>(state.range(0));
  workload::RunWorkload(*db, options);
  auto history = db->RecordedHistory();
  ADYA_CHECK(history.ok());
  for (auto _ : state) {
    auto mix = CheckMixingCorrect(*history);
    benchmark::DoNotOptimize(mix.ok());
  }
  state.SetLabel(StrCat(state.range(0), " mixed txns"));
}
BENCHMARK(BM_CheckMixingCorrect)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::PrintMixing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
