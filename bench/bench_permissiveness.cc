// The quantitative form of §3's argument: the preventative definitions
// (P0–P3 / locking degrees) are strictly more restrictive than the
// generalized PL levels. For random well-formed histories we measure, per
// level pair, the fraction of histories each accepts. Two properties must
// hold: (a) containment — everything a degree accepts its PL level accepts
// (violations column must be 0); (b) a strict gap that widens with
// concurrency.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/levels.h"
#include "core/preventative.h"
#include "workload/workload.h"

namespace adya {
namespace {

using bench::Section;
using bench::Table;

constexpr int kSamples = 2000;

struct Pair {
  LockingDegree degree;
  IsolationLevel level;
};

constexpr Pair kPairs[] = {
    {LockingDegree::kReadUncommitted, IsolationLevel::kPL1},
    {LockingDegree::kReadCommitted, IsolationLevel::kPL2},
    {LockingDegree::kRepeatableRead, IsolationLevel::kPL299},
    {LockingDegree::kSerializable, IsolationLevel::kPL3},
};

void RunCell(int num_txns, int num_objects, Table& table) {
  int allowed_degree[4] = {0};
  int allowed_pl[4] = {0};
  int containment_violations[4] = {0};
  for (int s = 0; s < kSamples; ++s) {
    workload::RandomHistoryOptions options;
    options.seed = static_cast<uint64_t>(s) * 7919 + num_txns;
    options.num_txns = num_txns;
    options.num_objects = num_objects;
    // Containment is stated over single-version-realizable histories (the
    // only class the preventative model can even describe).
    options.realizable = true;
    History h = workload::GenerateRandomHistory(options);
    Classification c = Classify(h);
    for (int i = 0; i < 4; ++i) {
      bool degree_ok = CheckDegree(h, kPairs[i].degree).allowed;
      bool pl_ok = c.Satisfies(kPairs[i].level);
      allowed_degree[i] += degree_ok;
      allowed_pl[i] += pl_ok;
      containment_violations[i] += degree_ok && !pl_ok;
    }
  }
  for (int i = 0; i < 4; ++i) {
    double pd = 100.0 * allowed_degree[i] / kSamples;
    double pg = 100.0 * allowed_pl[i] / kSamples;
    table.AddRow({StrCat(num_txns, " txns / ", num_objects, " objects"),
                  std::string(LockingDegreeName(kPairs[i].degree)),
                  StrCat(pd, "%"),
                  std::string(IsolationLevelName(kPairs[i].level)),
                  StrCat(pg, "%"), StrCat(pg - pd, " pp"),
                  StrCat(containment_violations[i])});
  }
}

void PrintPermissiveness() {
  Section(StrCat("Permissiveness: preventative degrees vs PL levels (",
                 kSamples, " random histories per cell)"));
  Table table({"Workload", "Preventative", "allowed", "Generalized",
               "allowed", "gap", "containment violations"});
  RunCell(4, 4, table);
  RunCell(6, 3, table);
  RunCell(8, 2, table);
  table.Print();
  std::printf(
      "\nExpected shape (paper §3): every gap is positive — the generalized\n"
      "definitions admit strictly more histories — and the containment\n"
      "violation count is 0 (they admit everything locking admits).\n");
}

void BM_CheckDegreeVsClassify(benchmark::State& state) {
  workload::RandomHistoryOptions options;
  options.seed = 11;
  options.num_txns = 12;
  History h = workload::GenerateRandomHistory(options);
  bool classify = state.range(0) != 0;
  for (auto _ : state) {
    if (classify) {
      Classification c = Classify(h);
      benchmark::DoNotOptimize(c.strongest_ansi);
    } else {
      auto r = CheckDegree(h, LockingDegree::kSerializable);
      benchmark::DoNotOptimize(r.allowed);
    }
  }
  state.SetLabel(classify ? "Classify (all PL levels)"
                          : "CheckDegree(SERIALIZABLE)");
}
BENCHMARK(BM_CheckDegreeVsClassify)->Arg(0)->Arg(1);

}  // namespace
}  // namespace adya

int main(int argc, char** argv) {
  adya::PrintPermissiveness();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
