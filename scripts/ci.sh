#!/usr/bin/env bash
# CI driver: build + test in the plain configuration, then rebuild under
# ThreadSanitizer and run the concurrency-sensitive tests — the stress and
# blocking-engine tests under TSan are the race detector for the engine,
# recorder tap, and stress subsystem.
#
# Usage: scripts/ci.sh [jobs]
#   CI_TSAN_FULL=1   run the ENTIRE suite under TSan (slow), not just the
#                    concurrency tests.
#   CI_SKIP_TSAN=1   plain configuration only.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== facade guard (checker internals stay behind adya::Checker) ==="
# Code outside src/core/ and tests/ must go through the adya::Checker
# facade (core/checker_api.h) instead of constructing the checker
# implementations directly. Streaming IncrementalChecker use is the one
# legitimate exception: the online certifier embeds it, and
# bench_online_incremental benchmarks it against its own naive baseline.
if grep -rnE '(PhenomenaChecker|ParallelChecker) [a-z_]+\(' \
    examples/ bench/ src/stress/ src/engine/ src/workload/ 2>/dev/null; then
  echo "facade bypass: construct adya::Checker (core/checker_api.h) instead"
  exit 1
fi
if grep -rnE 'IncrementalChecker [a-z_]+\(|make_unique<IncrementalChecker>' \
    examples/ bench/ src/stress/ src/engine/ src/workload/ 2>/dev/null \
    | grep -vE 'src/stress/certifier\.cc|bench/bench_online_incremental\.cc'; then
  echo "facade bypass: construct adya::Checker (core/checker_api.h) instead"
  exit 1
fi

echo "=== plain build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
echo "=== plain ctest (fast suite) ==="
ctest --test-dir build --output-on-failure -j "$JOBS" -LE slow
echo "=== plain ctest (slow label: parallel + incremental differential sweeps) ==="
ctest --test-dir build --output-on-failure -j "$JOBS" -L slow

echo "=== adya_stress smoke (locking @ PL-3, 8 threads, 2s) ==="
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=2s
echo "=== adya_stress smoke (parallel certification: 8 check threads) ==="
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=2s --certify-level=PL-3 --check-threads=8 --certify-batch=4
echo "=== adya_stress smoke (incremental certification) ==="
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=2s --certify-level=PL-3 --incremental

echo "=== adya_stress smoke (--stats: snapshot JSON + required metrics) ==="
STATS_JSON="$(mktemp)"
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=1s --certify-level=PL-3 --check-threads=4 \
  --stats-out="$STATS_JSON" >/dev/null
python3 -m json.tool "$STATS_JSON" >/dev/null
for key in schema_version engine.commits engine.lock_wait_us \
    checker.conflicts_us checker.check_us certifier.certify_us \
    certifier.queue_depth; do
  grep -q "\"$key\"" "$STATS_JSON" || {
    echo "stats snapshot missing $key:"; cat "$STATS_JSON"; exit 1;
  }
done
rm -f "$STATS_JSON"

echo "=== perf smoke (bench_checker_scale phase timers, small size) ==="
# Not a perf gate (CI machines are noisy) — verifies the phase-timer BENCH
# pipeline end to end: the binary runs with --repeats, emits well-formed
# checker_phases JSON lines with the min/median summaries the checked-in
# bench/BENCH_checker_cpu.json baseline is built from.
PERF_SMOKE="$(mktemp)"
./build/bench/bench_checker_scale --repeats=2 --phase-txns=200 \
  --benchmark_filter='^$' > "$PERF_SMOKE"
python3 - "$PERF_SMOKE" <<'PYEOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.startswith('BENCH ')]
phases = [json.loads(l[len('BENCH '):]) for l in lines]
phases = [d for d in phases if d['name'] == 'checker_phases']
assert phases, 'no checker_phases BENCH line emitted'
for d in phases:
    assert d['repeats'] == 2, d
    assert d['layout'] == 'dense', d
    for key in ('conflicts_us', 'cycle_search_us', 'conflict_cycle_us',
                'phenomenon_us', 'witness_us', 'wall_us'):
        stat = d[key]
        assert stat['min'] <= stat['median'], (key, stat)
print(f'perf smoke OK: {len(phases)} checker_phases line(s)')
PYEOF
rm -f "$PERF_SMOKE"

if [[ "${CI_SKIP_TSAN:-0}" == "1" ]]; then
  echo "=== TSan skipped (CI_SKIP_TSAN=1) ==="
  exit 0
fi

echo "=== ThreadSanitizer build ==="
cmake -B build-tsan -S . -DADYA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
echo "=== TSan ctest ==="
if [[ "${CI_TSAN_FULL:-0}" == "1" ]]; then
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
  # The multi-threaded surface: stress runs, blocking-engine contention,
  # the concurrent recorder tap, the thread pool, the obs counters and
  # histograms, and the parallel- and incremental-checker differential
  # harnesses (at a tenth of the corpus — TSan is ~10x).
  # *Bitset* is the forced-cycle-oracle differential suite (forced-on and
  # forced-off bitset reachability must stay bit-identical in every mode,
  # including the parallel checker's fan-out — hence TSan).
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Stress|Blocking|Recorder|Concurrent|ThreadPool|Metrics|Obs|Bitset'
  ADYA_DIFF_SCALE=10 ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -L slow
fi

echo "=== adya_stress under TSan (locking @ PL-3, 8 threads, 1s) ==="
./build-tsan/examples/adya_stress --scheme=locking --level=PL-3 \
  --threads=8 --duration=1s
echo "=== adya_stress under TSan (8 check threads, batched certify) ==="
./build-tsan/examples/adya_stress --scheme=locking --level=PL-3 \
  --threads=8 --duration=1s --certify-level=PL-3 --check-threads=8 \
  --certify-batch=4
echo "=== adya_stress under TSan (incremental certification) ==="
./build-tsan/examples/adya_stress --scheme=locking --level=PL-3 \
  --threads=8 --duration=1s --certify-level=PL-3 --incremental
echo "CI OK"
