#!/usr/bin/env bash
# CI driver: build + test in the plain configuration, then rebuild under
# ThreadSanitizer and run the concurrency-sensitive tests — the stress and
# blocking-engine tests under TSan are the race detector for the engine,
# recorder tap, and stress subsystem.
#
# Usage: scripts/ci.sh [jobs]
#   CI_TSAN_FULL=1   run the ENTIRE suite under TSan (slow), not just the
#                    concurrency tests.
#   CI_SKIP_TSAN=1   plain configuration only.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== facade guard (checker internals stay behind adya::Checker) ==="
# Code outside src/core/ and tests/ must go through the adya::Checker
# facade (core/checker_api.h) instead of constructing the checker
# implementations directly. Streaming IncrementalChecker use is the one
# legitimate exception: the online certifier embeds it, and
# bench_online_incremental benchmarks it against its own naive baseline.
if grep -rnE '(PhenomenaChecker|ParallelChecker) [a-z_]+\(' \
    examples/ bench/ src/stress/ src/engine/ src/workload/ 2>/dev/null; then
  echo "facade bypass: construct adya::Checker (core/checker_api.h) instead"
  exit 1
fi
if grep -rnE 'IncrementalChecker [a-z_]+\(|make_unique<IncrementalChecker>' \
    examples/ bench/ src/stress/ src/engine/ src/workload/ 2>/dev/null \
    | grep -vE 'src/stress/certifier\.cc|bench/bench_online_incremental\.cc'; then
  echo "facade bypass: construct adya::Checker (core/checker_api.h) instead"
  exit 1
fi

echo "=== input facade guard (history text enters through LoadHistory) ==="
# The input-side mirror of the checker facade rule: history text is parsed
# through the HistorySource registry (history/source.h), never by naming a
# parser. Direct ParseHistory / ParseElle* calls are allowed only inside
# src/history/ and src/ingest/ (the sources themselves); src/serve/ keeps
# the streaming StreamParser, which has no one-shot facade equivalent.
if grep -rnE '\b(ParseHistory|ParseElleAppend|ParseElleRegister)\(' \
    examples/ bench/ src/core/ src/stress/ src/engine/ src/workload/ \
    src/serve/ src/common/ src/obs/ src/graph/ 2>/dev/null \
    | grep -v 'src/common/result\.h'; then
  echo "input facade bypass: load history text through adya::LoadHistory" \
       "(history/source.h) instead"
  exit 1
fi

echo "=== plain build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
echo "=== plain ctest (fast suite) ==="
ctest --test-dir build --output-on-failure -j "$JOBS" -LE slow
echo "=== plain ctest (slow label: phenomenon/parallel/incremental differential sweeps) ==="
ctest --test-dir build --output-on-failure -j "$JOBS" -L slow

echo "=== adya_stress smoke (locking @ PL-3, 8 threads, 2s) ==="
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=2s
echo "=== adya_stress smoke (parallel certification: 8 check threads) ==="
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=2s --certify-level=PL-3 --check-threads=8 --certify-batch=4
echo "=== adya_stress smoke (incremental certification) ==="
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=2s --certify-level=PL-3 --incremental

echo "=== histtool ingestion smoke (Elle list-append fixtures) ==="
# The checked-in read-skew log must convict with witnesses that speak in
# the log's own op ids (T0, T1) — and the clean log must certify clean.
HIST_OUT="$(mktemp)"
if ./build/examples/histtool check --input-format=elle-append \
    examples/histories/elle_g_single.edn > "$HIST_OUT" 2>&1; then
  echo "elle_g_single.edn unexpectedly certified clean:"
  cat "$HIST_OUT"; exit 1
fi
for want in 'ingest[elle-append]: 2 ops' 'G-single' 'T1 --rw(item)--> T0' \
    'T0 --wr(item)--> T1' 'synthetic initial-state writer: T2'; do
  grep -qF -- "$want" "$HIST_OUT" || {
    echo "ingestion smoke output missing '$want':"; cat "$HIST_OUT"; exit 1;
  }
done
./build/examples/histtool check examples/histories/elle_clean.edn \
    > "$HIST_OUT" 2>&1 || {
  echo "elle_clean.edn (auto-sniffed) failed to certify:"
  cat "$HIST_OUT"; exit 1
}
grep -q 'strongest ANSI level: PL-3' "$HIST_OUT" || {
  echo "clean fixture not at PL-3:"; cat "$HIST_OUT"; exit 1;
}
rm -f "$HIST_OUT"

echo "=== adya_stress ingestion smoke (--certify-file over an Elle log) ==="
if ./build/examples/adya_stress --certify-file=examples/histories/elle_g1a.edn \
    --certify-level=PL-2 --quiet; then
  echo "elle_g1a.edn unexpectedly satisfied PL-2"; exit 1
fi
./build/examples/adya_stress --certify-file=examples/histories/elle_g1a.edn \
  --certify-level=PL-1 --quiet

echo "=== adya_stress smoke (--stats: snapshot JSON + required metrics) ==="
STATS_JSON="$(mktemp)"
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=1s --certify-level=PL-3 --check-threads=4 \
  --stats-out="$STATS_JSON" >/dev/null
python3 -m json.tool "$STATS_JSON" >/dev/null
for key in schema_version engine.commits engine.lock_wait_us \
    checker.conflicts_us checker.check_us certifier.certify_us \
    certifier.queue_depth; do
  grep -q "\"$key\"" "$STATS_JSON" || {
    echo "stats snapshot missing $key:"; cat "$STATS_JSON"; exit 1;
  }
done
rm -f "$STATS_JSON"

echo "=== adya_serve smoke (daemon + adya_load + /metrics + SIGTERM drain) ==="
SERVE_DIR="$(mktemp -d)"
# --check-threads=2 gives every session a 2-wide pool for its offline
# witness passes — the smoke then also covers the pooled session path.
./build/examples/adya_serve --port=0 --http-port=0 --check-threads=2 \
  --unix="$SERVE_DIR/serve.sock" --port-file="$SERVE_DIR/ports" \
  > "$SERVE_DIR/daemon.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do
  [[ -s "$SERVE_DIR/ports" ]] && break
  sleep 0.1
done
[[ -s "$SERVE_DIR/ports" ]] || { echo "adya_serve never wrote its port file"; cat "$SERVE_DIR/daemon.log"; exit 1; }
# The port file is a single line: "tcp=PORT http=PORT".
SERVE_TCP="$(tr ' ' '\n' < "$SERVE_DIR/ports" | sed -n 's/^tcp=//p')"
SERVE_HTTP="$(tr ' ' '\n' < "$SERVE_DIR/ports" | sed -n 's/^http=//p')"
./build/examples/adya_load --host=127.0.0.1 --port="$SERVE_TCP" \
  --processes=2 --sessions=2 --batches=10 --write-skew-every=5
./build/examples/adya_load --unix="$SERVE_DIR/serve.sock" --mode=engine \
  --level=PL-2 --processes=1 --sessions=2 --batches=8
python3 - "$SERVE_HTTP" <<'PYEOF'
import json, sys, urllib.request
port = sys.argv[1]
prom = urllib.request.urlopen(f'http://127.0.0.1:{port}/metrics').read().decode()
for key in ('adya_serve_connections', 'adya_serve_sessions',
            'adya_serve_rx_batches', 'adya_serve_busy_replies',
            'adya_serve_queue_depth', 'adya_serve_certify_us',
            'adya_serve_reply_us'):
    assert key in prom, f'/metrics missing {key}:\n{prom}'
statsz = json.load(urllib.request.urlopen(f'http://127.0.0.1:{port}/statsz'))
assert 'serve.connections' in json.dumps(statsz), statsz
print('serve /metrics + /statsz OK')
PYEOF
kill -TERM "$SERVE_PID"
SERVE_RC=0; wait "$SERVE_PID" || SERVE_RC=$?
[[ "$SERVE_RC" == "0" ]] || { echo "adya_serve SIGTERM exit $SERVE_RC"; cat "$SERVE_DIR/daemon.log"; exit 1; }
grep -q "drained" "$SERVE_DIR/daemon.log" || { echo "no drain message:"; cat "$SERVE_DIR/daemon.log"; exit 1; }
rm -rf "$SERVE_DIR"

echo "=== serve bench smoke + checked-in BENCH_serve.json shape ==="
SERVE_BENCH="$(mktemp)"
./build/bench/bench_serve --repeats=1 --benchmark_filter='BM_ServeTcp/1/' \
  > "$SERVE_BENCH"
python3 - "$SERVE_BENCH" bench/BENCH_serve.json <<'PYEOF'
import json, sys
for path, want_transports in ((sys.argv[1], {'tcp'}),
                              (sys.argv[2], {'tcp', 'unix'})):
    lines = [l for l in open(path) if l.startswith('BENCH ')]
    rows = [json.loads(l[len('BENCH '):]) for l in lines]
    rows = [d for d in rows if d['name'] == 'serve_throughput']
    assert rows, f'no serve_throughput BENCH line in {path}'
    assert {d['transport'] for d in rows} >= want_transports, rows
    for d in rows:
        assert d['sessions'] >= 1 and d['workers'] >= 1, d
        assert d['wall_us']['min'] <= d['wall_us']['median'], d
        assert d['events_per_s'] > 0 and d['batches_per_s'] > 0, d
        lat = d['latency_us']
        assert lat['p50'] <= lat['p95'] <= lat['p99'] <= lat['max'], d
        assert lat['count'] > 0, d
print('serve bench shapes OK')
PYEOF
rm -f "$SERVE_BENCH"

echo "=== gc bench smoke + checked-in BENCH_gc.json shape ==="
# Structure gate, not a perf gate: the online_gc line must show the GC
# really bounding memory (live_events well under the stream length,
# gc_runs/gc_freed_events nonzero) in both the fresh smoke run and the
# checked-in baseline.
GC_BENCH="$(mktemp)"
./build/bench/bench_online_incremental --repeats=1 \
  --benchmark_filter='BM_OnlineGcBoundedMemory' > "$GC_BENCH"
python3 - "$GC_BENCH" bench/BENCH_gc.json <<'PYEOF'
import json, sys
for path in sys.argv[1:]:
    lines = [l for l in open(path) if l.startswith('BENCH ')]
    rows = [json.loads(l[len('BENCH '):]) for l in lines]
    rows = [d for d in rows if d['name'] == 'online_gc']
    assert rows, f'no online_gc BENCH line in {path}'
    for d in rows:
        assert d['commits'] > 0 and d['events'] > d['commits'], d
        for tier in ('gc', 'nogc'):
            t = d[tier]
            assert t['wall_us']['min'] <= t['wall_us']['median'], d
            assert t['peak_rss_kb'] > 0 and t['live_events'] > 0, d
        gc, nogc = d['gc'], d['nogc']
        assert nogc['live_events'] == d['events'], d
        assert gc['live_events'] * 4 < d['events'], \
            f'GC did not bound the live window: {d}'
        assert gc['gc_runs'] > 0 and gc['gc_freed_events'] > 0, d
        assert gc['gc_freed_events'] + gc['live_events'] == d['events'], d
print('gc bench shapes OK')
PYEOF
rm -f "$GC_BENCH"

echo "=== perf smoke (bench_checker_scale phase timers + regression gates) ==="
# Verifies the phase-timer BENCH pipeline end to end AND gates against
# gross regressions, serial and threaded: the fresh min-of-repeats
# phenomenon_us at the smoke size (threads=1 row) may not exceed 3x the
# checked-in bench/BENCH_checker_cpu.json baseline, and the threads=4
# row's end-to-end wall may not exceed 3x the baseline serial wall — a
# pool must never make the check catastrophically slower, even on a
# one-core machine where it cannot make it faster. 3x is deliberately
# loose — CI machines are noisy and min-of-2 is a rough statistic — so
# only a real algorithmic regression (e.g. an artifact silently rebuilt
# per query, or a nested fan-out serializing through the pool) trips it,
# not scheduler jitter.
PERF_SMOKE="$(mktemp)"
./build/bench/bench_checker_scale --repeats=2 --phase-txns=1000 \
  --phase-threads=1,4 --benchmark_filter='^$' > "$PERF_SMOKE"
python3 - "$PERF_SMOKE" bench/BENCH_checker_cpu.json <<'PYEOF'
import json, sys

def bench_rows(path):
    lines = [l for l in open(path) if l.startswith('BENCH ')]
    rows = [json.loads(l[len('BENCH '):]) for l in lines]
    return [d for d in rows if d['name'] == 'checker_phases']

fresh = bench_rows(sys.argv[1])
assert fresh, 'no checker_phases BENCH line emitted'
for d in fresh:
    assert d['repeats'] == 2, d
    assert d['layout'] == 'artifacts', d
    assert d['threads'] >= 1, d
    for key in ('finalize_us', 'version_order_us', 'conflicts_us',
                'cycle_search_us', 'conflict_cycle_us', 'dsg_build_us',
                'phenomenon_us', 'witness_us', 'other_us', 'wall_us'):
        stat = d[key]
        assert stat['min'] <= stat['median'] <= stat['p90'], (key, stat)
serial = [d for d in fresh if d['threads'] == 1]
threaded = [d for d in fresh if d['threads'] == 4]
assert serial and threaded, fresh
smoke = serial[0]
base = [d for d in bench_rows(sys.argv[2])
        if d['layout'] == 'artifacts' and d['txns'] == smoke['txns']
        and d.get('threads', 1) == 1]
assert base, f"baseline has no artifacts line at {smoke['txns']} txns"
baseline_us = base[0]['phenomenon_us']['min']
fresh_us = smoke['phenomenon_us']['min']
assert fresh_us <= 3.0 * baseline_us, (
    f"phenomenon phase regressed: {fresh_us:.0f}us fresh vs "
    f"{baseline_us:.0f}us baseline min (>3x)")
baseline_wall = base[0]['wall_us']['min']
threaded_wall = threaded[0]['wall_us']['min']
assert threaded_wall <= 3.0 * baseline_wall, (
    f"threaded check regressed: {threaded_wall:.0f}us wall at 4 threads vs "
    f"{baseline_wall:.0f}us serial baseline min (>3x)")
print(f"perf smoke OK: phenomenon_us {fresh_us:.0f}us "
      f"<= 3x baseline {baseline_us:.0f}us; 4-thread wall "
      f"{threaded_wall:.0f}us <= 3x baseline wall {baseline_wall:.0f}us")
PYEOF
rm -f "$PERF_SMOKE"

if [[ "${CI_SKIP_TSAN:-0}" == "1" ]]; then
  echo "=== TSan skipped (CI_SKIP_TSAN=1) ==="
  exit 0
fi

echo "=== ThreadSanitizer build ==="
cmake -B build-tsan -S . -DADYA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
echo "=== TSan ctest ==="
if [[ "${CI_TSAN_FULL:-0}" == "1" ]]; then
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
  # The multi-threaded surface: stress runs, blocking-engine contention,
  # the concurrent recorder tap, the thread pool, the obs counters and
  # histograms, and the slow-label differential harnesses — the
  # phenomenon-phase wall (old rescan vs shared-artifacts, all modes, on
  # its {1,2,8}-thread pool axis), the parallel- and the
  # incremental-checker sweeps — at a tenth of the corpus (TSan is ~10x).
  # *Bitset* is the forced-cycle-oracle differential suite (forced-on and
  # forced-off bitset reachability must stay bit-identical in every mode,
  # including the parallel checker's fan-out — hence TSan).
  # *Parallel* picks up the intra-artifact parallelism differentials:
  # sharded SCC/CSR/cycle-scan vs their serial formulations, the pooled
  # preventative scans, and the pooled version-order build.
  # *Serve|Framing* is the adya_serve daemon: acceptor/reader/worker-shard
  # threading with concurrent differential clients.
  # *Ingest* is the Elle ingestion unit suite; the slow label below adds
  # the export⇄import round-trip wall at a tenth of its corpus.
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Stress|Blocking|Recorder|Concurrent|ThreadPool|Metrics|Obs|Bitset|Parallel|Serve|Framing|Ingest'
  ADYA_DIFF_SCALE=10 ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -L slow
fi

echo "=== adya_stress under TSan (locking @ PL-3, 8 threads, 1s) ==="
./build-tsan/examples/adya_stress --scheme=locking --level=PL-3 \
  --threads=8 --duration=1s
echo "=== adya_stress under TSan (8 check threads, batched certify) ==="
./build-tsan/examples/adya_stress --scheme=locking --level=PL-3 \
  --threads=8 --duration=1s --certify-level=PL-3 --check-threads=8 \
  --certify-batch=4
echo "=== adya_stress under TSan (incremental certification) ==="
./build-tsan/examples/adya_stress --scheme=locking --level=PL-3 \
  --threads=8 --duration=1s --certify-level=PL-3 --incremental
echo "CI OK"
