#!/usr/bin/env bash
# CI driver: build + test in the plain configuration, then rebuild under
# ThreadSanitizer and run the concurrency-sensitive tests — the stress and
# blocking-engine tests under TSan are the race detector for the engine,
# recorder tap, and stress subsystem.
#
# Usage: scripts/ci.sh [jobs]
#   CI_TSAN_FULL=1   run the ENTIRE suite under TSan (slow), not just the
#                    concurrency tests.
#   CI_SKIP_TSAN=1   plain configuration only.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== plain build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
echo "=== plain ctest (fast suite) ==="
ctest --test-dir build --output-on-failure -j "$JOBS" -LE slow
echo "=== plain ctest (slow label: parallel + incremental differential sweeps) ==="
ctest --test-dir build --output-on-failure -j "$JOBS" -L slow

echo "=== adya_stress smoke (locking @ PL-3, 8 threads, 2s) ==="
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=2s
echo "=== adya_stress smoke (parallel certification: 8 check threads) ==="
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=2s --certify-level=PL-3 --check-threads=8 --certify-batch=4
echo "=== adya_stress smoke (incremental certification) ==="
./build/examples/adya_stress --scheme=locking --level=PL-3 --threads=8 \
  --duration=2s --certify-level=PL-3 --incremental

if [[ "${CI_SKIP_TSAN:-0}" == "1" ]]; then
  echo "=== TSan skipped (CI_SKIP_TSAN=1) ==="
  exit 0
fi

echo "=== ThreadSanitizer build ==="
cmake -B build-tsan -S . -DADYA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
echo "=== TSan ctest ==="
if [[ "${CI_TSAN_FULL:-0}" == "1" ]]; then
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
  # The multi-threaded surface: stress runs, blocking-engine contention,
  # the concurrent recorder tap, the thread pool, and the parallel- and
  # incremental-checker differential harnesses (at a tenth of the corpus —
  # TSan is ~10x).
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Stress|Blocking|Recorder|Concurrent|ThreadPool|Metrics'
  ADYA_DIFF_SCALE=10 ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -L slow
fi

echo "=== adya_stress under TSan (locking @ PL-3, 8 threads, 1s) ==="
./build-tsan/examples/adya_stress --scheme=locking --level=PL-3 \
  --threads=8 --duration=1s
echo "=== adya_stress under TSan (8 check threads, batched certify) ==="
./build-tsan/examples/adya_stress --scheme=locking --level=PL-3 \
  --threads=8 --duration=1s --certify-level=PL-3 --check-threads=8 \
  --certify-batch=4
echo "=== adya_stress under TSan (incremental certification) ==="
./build-tsan/examples/adya_stress --scheme=locking --level=PL-3 \
  --threads=8 --duration=1s --certify-level=PL-3 --incremental
echo "CI OK"
