file(REMOVE_RECURSE
  "CMakeFiles/adya_workload.dir/workload.cc.o"
  "CMakeFiles/adya_workload.dir/workload.cc.o.d"
  "libadya_workload.a"
  "libadya_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adya_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
