# Empty dependencies file for adya_workload.
# This may be replaced when dependencies are built.
