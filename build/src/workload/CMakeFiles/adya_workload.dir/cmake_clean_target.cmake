file(REMOVE_RECURSE
  "libadya_workload.a"
)
