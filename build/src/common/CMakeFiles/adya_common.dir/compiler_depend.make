# Empty compiler generated dependencies file for adya_common.
# This may be replaced when dependencies are built.
