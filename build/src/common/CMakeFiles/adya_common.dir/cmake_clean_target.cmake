file(REMOVE_RECURSE
  "libadya_common.a"
)
