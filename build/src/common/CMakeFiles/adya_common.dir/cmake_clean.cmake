file(REMOVE_RECURSE
  "CMakeFiles/adya_common.dir/check.cc.o"
  "CMakeFiles/adya_common.dir/check.cc.o.d"
  "CMakeFiles/adya_common.dir/rng.cc.o"
  "CMakeFiles/adya_common.dir/rng.cc.o.d"
  "CMakeFiles/adya_common.dir/status.cc.o"
  "CMakeFiles/adya_common.dir/status.cc.o.d"
  "CMakeFiles/adya_common.dir/str_util.cc.o"
  "CMakeFiles/adya_common.dir/str_util.cc.o.d"
  "libadya_common.a"
  "libadya_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adya_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
