file(REMOVE_RECURSE
  "libadya_core.a"
)
