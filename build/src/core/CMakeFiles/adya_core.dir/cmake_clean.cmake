file(REMOVE_RECURSE
  "CMakeFiles/adya_core.dir/certifier.cc.o"
  "CMakeFiles/adya_core.dir/certifier.cc.o.d"
  "CMakeFiles/adya_core.dir/conflicts.cc.o"
  "CMakeFiles/adya_core.dir/conflicts.cc.o.d"
  "CMakeFiles/adya_core.dir/dsg.cc.o"
  "CMakeFiles/adya_core.dir/dsg.cc.o.d"
  "CMakeFiles/adya_core.dir/levels.cc.o"
  "CMakeFiles/adya_core.dir/levels.cc.o.d"
  "CMakeFiles/adya_core.dir/minimize.cc.o"
  "CMakeFiles/adya_core.dir/minimize.cc.o.d"
  "CMakeFiles/adya_core.dir/msg.cc.o"
  "CMakeFiles/adya_core.dir/msg.cc.o.d"
  "CMakeFiles/adya_core.dir/online.cc.o"
  "CMakeFiles/adya_core.dir/online.cc.o.d"
  "CMakeFiles/adya_core.dir/paper_histories.cc.o"
  "CMakeFiles/adya_core.dir/paper_histories.cc.o.d"
  "CMakeFiles/adya_core.dir/phenomena.cc.o"
  "CMakeFiles/adya_core.dir/phenomena.cc.o.d"
  "CMakeFiles/adya_core.dir/preventative.cc.o"
  "CMakeFiles/adya_core.dir/preventative.cc.o.d"
  "libadya_core.a"
  "libadya_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adya_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
