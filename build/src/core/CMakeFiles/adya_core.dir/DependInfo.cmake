
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/certifier.cc" "src/core/CMakeFiles/adya_core.dir/certifier.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/certifier.cc.o.d"
  "/root/repo/src/core/conflicts.cc" "src/core/CMakeFiles/adya_core.dir/conflicts.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/conflicts.cc.o.d"
  "/root/repo/src/core/dsg.cc" "src/core/CMakeFiles/adya_core.dir/dsg.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/dsg.cc.o.d"
  "/root/repo/src/core/levels.cc" "src/core/CMakeFiles/adya_core.dir/levels.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/levels.cc.o.d"
  "/root/repo/src/core/minimize.cc" "src/core/CMakeFiles/adya_core.dir/minimize.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/minimize.cc.o.d"
  "/root/repo/src/core/msg.cc" "src/core/CMakeFiles/adya_core.dir/msg.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/msg.cc.o.d"
  "/root/repo/src/core/online.cc" "src/core/CMakeFiles/adya_core.dir/online.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/online.cc.o.d"
  "/root/repo/src/core/paper_histories.cc" "src/core/CMakeFiles/adya_core.dir/paper_histories.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/paper_histories.cc.o.d"
  "/root/repo/src/core/phenomena.cc" "src/core/CMakeFiles/adya_core.dir/phenomena.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/phenomena.cc.o.d"
  "/root/repo/src/core/preventative.cc" "src/core/CMakeFiles/adya_core.dir/preventative.cc.o" "gcc" "src/core/CMakeFiles/adya_core.dir/preventative.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/history/CMakeFiles/adya_history.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adya_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adya_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
