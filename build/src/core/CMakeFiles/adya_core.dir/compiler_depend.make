# Empty compiler generated dependencies file for adya_core.
# This may be replaced when dependencies are built.
