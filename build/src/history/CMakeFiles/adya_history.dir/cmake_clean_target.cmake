file(REMOVE_RECURSE
  "libadya_history.a"
)
