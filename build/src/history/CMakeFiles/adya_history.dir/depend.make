# Empty dependencies file for adya_history.
# This may be replaced when dependencies are built.
