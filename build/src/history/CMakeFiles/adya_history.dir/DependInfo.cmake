
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/history/builder.cc" "src/history/CMakeFiles/adya_history.dir/builder.cc.o" "gcc" "src/history/CMakeFiles/adya_history.dir/builder.cc.o.d"
  "/root/repo/src/history/format.cc" "src/history/CMakeFiles/adya_history.dir/format.cc.o" "gcc" "src/history/CMakeFiles/adya_history.dir/format.cc.o.d"
  "/root/repo/src/history/history.cc" "src/history/CMakeFiles/adya_history.dir/history.cc.o" "gcc" "src/history/CMakeFiles/adya_history.dir/history.cc.o.d"
  "/root/repo/src/history/ids.cc" "src/history/CMakeFiles/adya_history.dir/ids.cc.o" "gcc" "src/history/CMakeFiles/adya_history.dir/ids.cc.o.d"
  "/root/repo/src/history/parser.cc" "src/history/CMakeFiles/adya_history.dir/parser.cc.o" "gcc" "src/history/CMakeFiles/adya_history.dir/parser.cc.o.d"
  "/root/repo/src/history/predicate.cc" "src/history/CMakeFiles/adya_history.dir/predicate.cc.o" "gcc" "src/history/CMakeFiles/adya_history.dir/predicate.cc.o.d"
  "/root/repo/src/history/row.cc" "src/history/CMakeFiles/adya_history.dir/row.cc.o" "gcc" "src/history/CMakeFiles/adya_history.dir/row.cc.o.d"
  "/root/repo/src/history/value.cc" "src/history/CMakeFiles/adya_history.dir/value.cc.o" "gcc" "src/history/CMakeFiles/adya_history.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adya_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
