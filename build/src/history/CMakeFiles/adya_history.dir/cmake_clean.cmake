file(REMOVE_RECURSE
  "CMakeFiles/adya_history.dir/builder.cc.o"
  "CMakeFiles/adya_history.dir/builder.cc.o.d"
  "CMakeFiles/adya_history.dir/format.cc.o"
  "CMakeFiles/adya_history.dir/format.cc.o.d"
  "CMakeFiles/adya_history.dir/history.cc.o"
  "CMakeFiles/adya_history.dir/history.cc.o.d"
  "CMakeFiles/adya_history.dir/ids.cc.o"
  "CMakeFiles/adya_history.dir/ids.cc.o.d"
  "CMakeFiles/adya_history.dir/parser.cc.o"
  "CMakeFiles/adya_history.dir/parser.cc.o.d"
  "CMakeFiles/adya_history.dir/predicate.cc.o"
  "CMakeFiles/adya_history.dir/predicate.cc.o.d"
  "CMakeFiles/adya_history.dir/row.cc.o"
  "CMakeFiles/adya_history.dir/row.cc.o.d"
  "CMakeFiles/adya_history.dir/value.cc.o"
  "CMakeFiles/adya_history.dir/value.cc.o.d"
  "libadya_history.a"
  "libadya_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adya_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
