# Empty dependencies file for adya_graph.
# This may be replaced when dependencies are built.
