file(REMOVE_RECURSE
  "CMakeFiles/adya_graph.dir/cycles.cc.o"
  "CMakeFiles/adya_graph.dir/cycles.cc.o.d"
  "CMakeFiles/adya_graph.dir/dot.cc.o"
  "CMakeFiles/adya_graph.dir/dot.cc.o.d"
  "libadya_graph.a"
  "libadya_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adya_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
