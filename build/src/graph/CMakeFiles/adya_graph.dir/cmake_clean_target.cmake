file(REMOVE_RECURSE
  "libadya_graph.a"
)
