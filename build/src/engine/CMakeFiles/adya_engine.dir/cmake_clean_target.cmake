file(REMOVE_RECURSE
  "libadya_engine.a"
)
