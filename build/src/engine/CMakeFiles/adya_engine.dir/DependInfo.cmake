
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/adya_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/adya_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/lock_manager.cc" "src/engine/CMakeFiles/adya_engine.dir/lock_manager.cc.o" "gcc" "src/engine/CMakeFiles/adya_engine.dir/lock_manager.cc.o.d"
  "/root/repo/src/engine/locking_scheduler.cc" "src/engine/CMakeFiles/adya_engine.dir/locking_scheduler.cc.o" "gcc" "src/engine/CMakeFiles/adya_engine.dir/locking_scheduler.cc.o.d"
  "/root/repo/src/engine/mvcc_scheduler.cc" "src/engine/CMakeFiles/adya_engine.dir/mvcc_scheduler.cc.o" "gcc" "src/engine/CMakeFiles/adya_engine.dir/mvcc_scheduler.cc.o.d"
  "/root/repo/src/engine/occ_scheduler.cc" "src/engine/CMakeFiles/adya_engine.dir/occ_scheduler.cc.o" "gcc" "src/engine/CMakeFiles/adya_engine.dir/occ_scheduler.cc.o.d"
  "/root/repo/src/engine/recorder.cc" "src/engine/CMakeFiles/adya_engine.dir/recorder.cc.o" "gcc" "src/engine/CMakeFiles/adya_engine.dir/recorder.cc.o.d"
  "/root/repo/src/engine/store.cc" "src/engine/CMakeFiles/adya_engine.dir/store.cc.o" "gcc" "src/engine/CMakeFiles/adya_engine.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/history/CMakeFiles/adya_history.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adya_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
