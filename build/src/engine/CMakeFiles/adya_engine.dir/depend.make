# Empty dependencies file for adya_engine.
# This may be replaced when dependencies are built.
