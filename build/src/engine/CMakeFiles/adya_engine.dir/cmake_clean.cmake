file(REMOVE_RECURSE
  "CMakeFiles/adya_engine.dir/database.cc.o"
  "CMakeFiles/adya_engine.dir/database.cc.o.d"
  "CMakeFiles/adya_engine.dir/lock_manager.cc.o"
  "CMakeFiles/adya_engine.dir/lock_manager.cc.o.d"
  "CMakeFiles/adya_engine.dir/locking_scheduler.cc.o"
  "CMakeFiles/adya_engine.dir/locking_scheduler.cc.o.d"
  "CMakeFiles/adya_engine.dir/mvcc_scheduler.cc.o"
  "CMakeFiles/adya_engine.dir/mvcc_scheduler.cc.o.d"
  "CMakeFiles/adya_engine.dir/occ_scheduler.cc.o"
  "CMakeFiles/adya_engine.dir/occ_scheduler.cc.o.d"
  "CMakeFiles/adya_engine.dir/recorder.cc.o"
  "CMakeFiles/adya_engine.dir/recorder.cc.o.d"
  "CMakeFiles/adya_engine.dir/store.cc.o"
  "CMakeFiles/adya_engine.dir/store.cc.o.d"
  "libadya_engine.a"
  "libadya_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adya_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
