file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_level_matrix.dir/bench_fig6_level_matrix.cc.o"
  "CMakeFiles/bench_fig6_level_matrix.dir/bench_fig6_level_matrix.cc.o.d"
  "bench_fig6_level_matrix"
  "bench_fig6_level_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_level_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
