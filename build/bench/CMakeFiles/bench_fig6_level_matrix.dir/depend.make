# Empty dependencies file for bench_fig6_level_matrix.
# This may be replaced when dependencies are built.
