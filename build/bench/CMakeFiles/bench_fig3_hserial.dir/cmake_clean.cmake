file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hserial.dir/bench_fig3_hserial.cc.o"
  "CMakeFiles/bench_fig3_hserial.dir/bench_fig3_hserial.cc.o.d"
  "bench_fig3_hserial"
  "bench_fig3_hserial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hserial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
