# Empty dependencies file for bench_fig5_hphantom.
# This may be replaced when dependencies are built.
