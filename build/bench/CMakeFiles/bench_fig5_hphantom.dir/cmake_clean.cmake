file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_hphantom.dir/bench_fig5_hphantom.cc.o"
  "CMakeFiles/bench_fig5_hphantom.dir/bench_fig5_hphantom.cc.o.d"
  "bench_fig5_hphantom"
  "bench_fig5_hphantom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_hphantom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
