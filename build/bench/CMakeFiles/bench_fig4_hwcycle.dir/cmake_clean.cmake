file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_hwcycle.dir/bench_fig4_hwcycle.cc.o"
  "CMakeFiles/bench_fig4_hwcycle.dir/bench_fig4_hwcycle.cc.o.d"
  "bench_fig4_hwcycle"
  "bench_fig4_hwcycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_hwcycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
