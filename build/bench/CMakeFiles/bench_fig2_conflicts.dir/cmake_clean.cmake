file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_conflicts.dir/bench_fig2_conflicts.cc.o"
  "CMakeFiles/bench_fig2_conflicts.dir/bench_fig2_conflicts.cc.o.d"
  "bench_fig2_conflicts"
  "bench_fig2_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
