file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_locking.dir/bench_fig1_locking.cc.o"
  "CMakeFiles/bench_fig1_locking.dir/bench_fig1_locking.cc.o.d"
  "bench_fig1_locking"
  "bench_fig1_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
