# Empty dependencies file for bench_fig1_locking.
# This may be replaced when dependencies are built.
