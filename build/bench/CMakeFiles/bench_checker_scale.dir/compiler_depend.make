# Empty compiler generated dependencies file for bench_checker_scale.
# This may be replaced when dependencies are built.
