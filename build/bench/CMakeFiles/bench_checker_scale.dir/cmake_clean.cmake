file(REMOVE_RECURSE
  "CMakeFiles/bench_checker_scale.dir/bench_checker_scale.cc.o"
  "CMakeFiles/bench_checker_scale.dir/bench_checker_scale.cc.o.d"
  "bench_checker_scale"
  "bench_checker_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
