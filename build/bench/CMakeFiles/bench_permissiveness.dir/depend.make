# Empty dependencies file for bench_permissiveness.
# This may be replaced when dependencies are built.
