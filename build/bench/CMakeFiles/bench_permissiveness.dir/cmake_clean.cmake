file(REMOVE_RECURSE
  "CMakeFiles/bench_permissiveness.dir/bench_permissiveness.cc.o"
  "CMakeFiles/bench_permissiveness.dir/bench_permissiveness.cc.o.d"
  "bench_permissiveness"
  "bench_permissiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_permissiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
