file(REMOVE_RECURSE
  "CMakeFiles/value_row_test.dir/value_row_test.cc.o"
  "CMakeFiles/value_row_test.dir/value_row_test.cc.o.d"
  "value_row_test"
  "value_row_test.pdb"
  "value_row_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_row_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
