# Empty dependencies file for value_row_test.
# This may be replaced when dependencies are built.
