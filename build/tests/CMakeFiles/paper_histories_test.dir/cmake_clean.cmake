file(REMOVE_RECURSE
  "CMakeFiles/paper_histories_test.dir/paper_histories_test.cc.o"
  "CMakeFiles/paper_histories_test.dir/paper_histories_test.cc.o.d"
  "paper_histories_test"
  "paper_histories_test.pdb"
  "paper_histories_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_histories_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
