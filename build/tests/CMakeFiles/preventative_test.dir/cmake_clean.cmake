file(REMOVE_RECURSE
  "CMakeFiles/preventative_test.dir/preventative_test.cc.o"
  "CMakeFiles/preventative_test.dir/preventative_test.cc.o.d"
  "preventative_test"
  "preventative_test.pdb"
  "preventative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preventative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
