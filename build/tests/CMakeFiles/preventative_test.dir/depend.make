# Empty dependencies file for preventative_test.
# This may be replaced when dependencies are built.
