file(REMOVE_RECURSE
  "CMakeFiles/certifier_test.dir/certifier_test.cc.o"
  "CMakeFiles/certifier_test.dir/certifier_test.cc.o.d"
  "certifier_test"
  "certifier_test.pdb"
  "certifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
