file(REMOVE_RECURSE
  "CMakeFiles/phenomena_test.dir/phenomena_test.cc.o"
  "CMakeFiles/phenomena_test.dir/phenomena_test.cc.o.d"
  "phenomena_test"
  "phenomena_test.pdb"
  "phenomena_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phenomena_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
