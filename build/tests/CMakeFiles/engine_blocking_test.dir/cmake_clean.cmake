file(REMOVE_RECURSE
  "CMakeFiles/engine_blocking_test.dir/engine_blocking_test.cc.o"
  "CMakeFiles/engine_blocking_test.dir/engine_blocking_test.cc.o.d"
  "engine_blocking_test"
  "engine_blocking_test.pdb"
  "engine_blocking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_blocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
