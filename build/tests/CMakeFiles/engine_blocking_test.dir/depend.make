# Empty dependencies file for engine_blocking_test.
# This may be replaced when dependencies are built.
