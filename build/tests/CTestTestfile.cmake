# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/value_row_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_test[1]_include.cmake")
include("/root/repo/build/tests/history_test[1]_include.cmake")
include("/root/repo/build/tests/builder_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/conflicts_test[1]_include.cmake")
include("/root/repo/build/tests/dsg_test[1]_include.cmake")
include("/root/repo/build/tests/phenomena_test[1]_include.cmake")
include("/root/repo/build/tests/levels_test[1]_include.cmake")
include("/root/repo/build/tests/preventative_test[1]_include.cmake")
include("/root/repo/build/tests/msg_test[1]_include.cmake")
include("/root/repo/build/tests/paper_histories_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_properties_test[1]_include.cmake")
include("/root/repo/build/tests/engine_blocking_test[1]_include.cmake")
include("/root/repo/build/tests/minimize_test[1]_include.cmake")
include("/root/repo/build/tests/certifier_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_test[1]_include.cmake")
include("/root/repo/build/tests/recorder_test[1]_include.cmake")
include("/root/repo/build/tests/online_test[1]_include.cmake")
