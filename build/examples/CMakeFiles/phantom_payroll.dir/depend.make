# Empty dependencies file for phantom_payroll.
# This may be replaced when dependencies are built.
