file(REMOVE_RECURSE
  "CMakeFiles/phantom_payroll.dir/phantom_payroll.cpp.o"
  "CMakeFiles/phantom_payroll.dir/phantom_payroll.cpp.o.d"
  "phantom_payroll"
  "phantom_payroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_payroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
