# Empty compiler generated dependencies file for mixed_levels.
# This may be replaced when dependencies are built.
