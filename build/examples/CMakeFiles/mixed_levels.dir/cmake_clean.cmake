file(REMOVE_RECURSE
  "CMakeFiles/mixed_levels.dir/mixed_levels.cpp.o"
  "CMakeFiles/mixed_levels.dir/mixed_levels.cpp.o.d"
  "mixed_levels"
  "mixed_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
