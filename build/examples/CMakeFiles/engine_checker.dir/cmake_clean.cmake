file(REMOVE_RECURSE
  "CMakeFiles/engine_checker.dir/engine_checker.cpp.o"
  "CMakeFiles/engine_checker.dir/engine_checker.cpp.o.d"
  "engine_checker"
  "engine_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
