# Empty compiler generated dependencies file for engine_checker.
# This may be replaced when dependencies are built.
