# Empty compiler generated dependencies file for bank_invariant.
# This may be replaced when dependencies are built.
