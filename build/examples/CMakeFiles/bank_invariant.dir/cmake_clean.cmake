file(REMOVE_RECURSE
  "CMakeFiles/bank_invariant.dir/bank_invariant.cpp.o"
  "CMakeFiles/bank_invariant.dir/bank_invariant.cpp.o.d"
  "bank_invariant"
  "bank_invariant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_invariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
