file(REMOVE_RECURSE
  "CMakeFiles/histtool.dir/histtool.cpp.o"
  "CMakeFiles/histtool.dir/histtool.cpp.o.d"
  "histtool"
  "histtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
