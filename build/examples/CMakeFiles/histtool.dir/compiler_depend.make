# Empty compiler generated dependencies file for histtool.
# This may be replaced when dependencies are built.
