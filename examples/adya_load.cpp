// adya_load: multi-process stress client for adya_serve. Forks N worker
// processes, each running M concurrent sessions; every session connects
// (TCP or Unix socket), opens at a PL level, and streams event batches —
// synthetic transactions (default) or an engine-recorded workload replayed
// through the wire. Per-batch round-trip latency lands in a histogram
// shared across the processes (an anonymous shared mapping), so the final
// p50/p95/p99 cover every batch of the whole fleet. Emits one JSON object
// on stdout.
//
//   adya_load --port=7478 --processes=4 --sessions=8 --batches=100
//   adya_load --unix=/tmp/adya.sock --mode=engine --level=PL-2
//
// Exit status is non-zero if any session failed.

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/str_util.h"
#include "history/format.h"
#include "obs/stats.h"
#include "serve/client.h"
#include "serve/stream_text.h"
#include "workload/workload.h"

namespace {

using namespace adya;

/// Cross-process result sink, placement-new'd into a MAP_SHARED mapping
/// before the forks: obs instruments are flat arrays of atomics, so they
/// work unchanged across processes.
struct SharedResults {
  obs::Histogram latency_us;
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> events{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> busy_retries{0};
  std::atomic<uint64_t> failed_sessions{0};
};

struct LoadOptions {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string unix_path;
  int processes = 2;
  int sessions = 4;
  int batches = 50;
  int events_per_batch = 48;
  int objects = 16;
  int write_skew_every = 0;  // 0 = clean stream
  std::string mode = "synthetic";  // or "engine"
  std::string level = "PL-3";
  uint64_t seed = 42;
  int max_pending = 0;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host=ADDR --port=N | --unix=PATH   where adya_serve listens\n"
      "  --processes=N     worker processes (default 2)\n"
      "  --sessions=M      concurrent sessions per process (default 4)\n"
      "  --batches=B       batches per session (default 50)\n"
      "  --events-per-batch=E  events per batch (default 48)\n"
      "  --objects=K       synthetic object universe (default 16)\n"
      "  --write-skew-every=N  inject a G2 pair every Nth batch (default "
      "off)\n"
      "  --mode=synthetic|engine  workload source (default synthetic)\n"
      "  --level=PL-x      session isolation level (default PL-3)\n"
      "  --seed=S          base RNG seed (default 42)\n"
      "  --max-pending=N   ask the server for a lower in-flight bound\n",
      argv0);
  std::exit(2);
}

Result<IsolationLevel> LevelFromFlag(const std::string& name) {
  for (IsolationLevel level :
       {IsolationLevel::kPL1, IsolationLevel::kPL2, IsolationLevel::kPLCS,
        IsolationLevel::kPL2Plus, IsolationLevel::kPL299,
        IsolationLevel::kPLSI, IsolationLevel::kPL3}) {
    if (IsolationLevelName(level) == name) return level;
  }
  return Status::InvalidArgument(StrCat("unknown level '", name, "'"));
}

Result<serve::Client> Connect(const LoadOptions& options) {
  if (!options.unix_path.empty()) {
    return serve::Client::ConnectUnix(options.unix_path);
  }
  return serve::Client::ConnectTcp(options.host, options.port);
}

/// The batch texts one session will stream, derived before the clock
/// starts so generation cost stays out of the latency numbers.
std::vector<std::string> SessionBatches(const LoadOptions& options,
                                        uint64_t session_seed) {
  std::vector<std::string> batches;
  batches.reserve(static_cast<size_t>(options.batches));
  if (options.mode == "engine") {
    // Record a real engine execution and replay its history (decls ride in
    // the first batch). The recorded event count bounds how many batches
    // the replay yields; short histories just mean shorter sessions.
    auto db = engine::Database::Create(engine::Scheme::kLocking,
                                       engine::Database::Options{});
    workload::WorkloadOptions w;
    w.seed = session_seed;
    w.num_txns = options.batches * 4;
    w.num_keys = options.objects;
    workload::RunWorkload(*db, w);
    auto history = db->RecordedHistory();
    if (!history.ok()) return batches;
    serve::StreamText text = serve::FormatForStream(
        *history, static_cast<size_t>(options.events_per_batch));
    for (size_t i = 0; i < text.batches.size() &&
                       batches.size() < static_cast<size_t>(options.batches);
         ++i) {
      if (i == 0) {
        batches.push_back(text.decls + text.batches[i]);
      } else {
        batches.push_back(text.batches[i]);
      }
    }
    return batches;
  }
  serve::SyntheticLoad gen(session_seed, options.objects,
                           options.events_per_batch,
                           options.write_skew_every);
  for (int b = 0; b < options.batches; ++b) batches.push_back(gen.NextBatch());
  return batches;
}

Status RunSession(const LoadOptions& options, IsolationLevel level,
                  uint64_t session_seed, SharedResults* results) {
  std::vector<std::string> batches = SessionBatches(options, session_seed);
  ADYA_ASSIGN_OR_RETURN(serve::Client client, Connect(options));
  ADYA_RETURN_IF_ERROR(client.Handshake());
  ADYA_RETURN_IF_ERROR(client.Open(level, options.max_pending).status());
  for (const std::string& text : batches) {
    auto start = std::chrono::steady_clock::now();
    ADYA_ASSIGN_OR_RETURN(serve::BatchReply reply, client.Certify(text));
    uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    results->latency_us.Record(us);
    results->batches.fetch_add(1, std::memory_order_relaxed);
    results->events.fetch_add(reply.events, std::memory_order_relaxed);
    results->commits.fetch_add(reply.commits, std::memory_order_relaxed);
    results->violations.fetch_add(reply.fresh.size(),
                                  std::memory_order_relaxed);
  }
  results->busy_retries.fetch_add(client.busy_retries(),
                                  std::memory_order_relaxed);
  ADYA_RETURN_IF_ERROR(client.CloseSession().status());
  return Status::OK();
}

/// One forked worker: M session threads, exit code = failed session count.
int RunProcess(const LoadOptions& options, IsolationLevel level,
               int process_index, SharedResults* results) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int s = 0; s < options.sessions; ++s) {
    uint64_t session_seed =
        options.seed + 1000003u * static_cast<uint64_t>(process_index) +
        static_cast<uint64_t>(s);
    threads.emplace_back([&, session_seed] {
      Status status = RunSession(options, level, session_seed, results);
      if (!status.ok()) {
        std::fprintf(stderr, "adya_load[%d]: session failed: %s\n",
                     process_index, status.ToString().c_str());
        failures.fetch_add(1, std::memory_order_relaxed);
        results->failed_sessions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return failures.load() > 127 ? 127 : failures.load();
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto take = [&](const char* prefix, auto setter) {
      std::string p = prefix;
      if (arg.rfind(p, 0) != 0) return false;
      setter(arg.substr(p.size()));
      return true;
    };
    bool ok =
        take("--host=", [&](std::string v) { options.host = v; }) ||
        take("--port=", [&](std::string v) { options.port = std::atoi(v.c_str()); }) ||
        take("--unix=", [&](std::string v) { options.unix_path = v; }) ||
        take("--processes=", [&](std::string v) { options.processes = std::atoi(v.c_str()); }) ||
        take("--sessions=", [&](std::string v) { options.sessions = std::atoi(v.c_str()); }) ||
        take("--batches=", [&](std::string v) { options.batches = std::atoi(v.c_str()); }) ||
        take("--events-per-batch=", [&](std::string v) { options.events_per_batch = std::atoi(v.c_str()); }) ||
        take("--objects=", [&](std::string v) { options.objects = std::atoi(v.c_str()); }) ||
        take("--write-skew-every=", [&](std::string v) { options.write_skew_every = std::atoi(v.c_str()); }) ||
        take("--mode=", [&](std::string v) { options.mode = v; }) ||
        take("--level=", [&](std::string v) { options.level = v; }) ||
        take("--seed=", [&](std::string v) { options.seed = std::strtoull(v.c_str(), nullptr, 10); }) ||
        take("--max-pending=", [&](std::string v) { options.max_pending = std::atoi(v.c_str()); });
    if (!ok) Usage(argv[0]);
  }
  if (options.port < 0 && options.unix_path.empty()) {
    std::fprintf(stderr, "adya_load: need --port or --unix\n");
    Usage(argv[0]);
  }
  if (options.mode != "synthetic" && options.mode != "engine") Usage(argv[0]);
  Result<IsolationLevel> level = LevelFromFlag(options.level);
  if (!level.ok()) {
    std::fprintf(stderr, "adya_load: %s\n", level.status().ToString().c_str());
    return 2;
  }
  if (options.processes < 1) options.processes = 1;
  if (options.sessions < 1) options.sessions = 1;

  void* shared = mmap(nullptr, sizeof(SharedResults), PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (shared == MAP_FAILED) {
    std::perror("adya_load: mmap");
    return 1;
  }
  auto* results = new (shared) SharedResults();

  auto start = std::chrono::steady_clock::now();
  std::vector<pid_t> children;
  for (int p = 0; p < options.processes; ++p) {
    pid_t pid = fork();
    if (pid < 0) {
      std::perror("adya_load: fork");
      return 1;
    }
    if (pid == 0) {
      _exit(RunProcess(options, *level, p, results));
    }
    children.push_back(pid);
  }
  int failed_children = 0;
  for (pid_t pid : children) {
    int wstatus = 0;
    if (waitpid(pid, &wstatus, 0) < 0 || !WIFEXITED(wstatus) ||
        WEXITSTATUS(wstatus) != 0) {
      ++failed_children;
    }
  }
  uint64_t elapsed_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  uint64_t batches = results->batches.load();
  uint64_t events = results->events.load();
  double secs = static_cast<double>(elapsed_us) / 1e6;
  const obs::Histogram& lat = results->latency_us;
  std::printf(
      "{\"schema_version\":1,\"tool\":\"adya_load\",\"mode\":\"%s\","
      "\"level\":\"%s\",\"processes\":%d,\"sessions_per_process\":%d,"
      "\"batches\":%llu,\"events\":%llu,\"commits\":%llu,"
      "\"violations\":%llu,\"busy_retries\":%llu,\"failed_sessions\":%llu,"
      "\"elapsed_us\":%llu,\"batches_per_s\":%.1f,\"events_per_s\":%.1f,"
      "\"latency_us\":{\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,\"max\":%llu,"
      "\"count\":%llu}}\n",
      options.mode.c_str(), options.level.c_str(), options.processes,
      options.sessions, static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(results->commits.load()),
      static_cast<unsigned long long>(results->violations.load()),
      static_cast<unsigned long long>(results->busy_retries.load()),
      static_cast<unsigned long long>(results->failed_sessions.load()),
      static_cast<unsigned long long>(elapsed_us),
      secs > 0 ? batches / secs : 0.0, secs > 0 ? events / secs : 0.0,
      static_cast<unsigned long long>(lat.Quantile(0.50)),
      static_cast<unsigned long long>(lat.Quantile(0.95)),
      static_cast<unsigned long long>(lat.Quantile(0.99)),
      static_cast<unsigned long long>(lat.max_value()),
      static_cast<unsigned long long>(lat.count()));
  int failed_sessions = static_cast<int>(results->failed_sessions.load());
  munmap(shared, sizeof(SharedResults));
  return failed_children > 0 || failed_sessions > 0 ? 1 : 0;
}
