// Elle-style end-to-end checking: run workloads against three real
// concurrency-control implementations (2PL with predicate locks, optimistic
// backward validation, snapshot isolation), record the histories they
// execute, and let the generalized definitions audit them. Also drives the
// classic SI write-skew anomaly and shows the checker catching it.

#include <cstdio>
#include <string>

#include "core/checker_api.h"
#include "core/levels.h"
#include "history/format.h"
#include "history/source.h"
#include "ingest/elle.h"
#include "workload/workload.h"

namespace {

using namespace adya;
using engine::Database;
using engine::ObjKey;
using engine::Scheme;

void AuditScheme(Scheme scheme, IsolationLevel level) {
  auto db = Database::Create(scheme, Database::Options{});
  workload::WorkloadOptions options;
  options.seed = 2024;
  options.levels = {level};
  options.num_txns = 20;
  options.num_keys = 4;
  workload::WorkloadStats stats = workload::RunWorkload(*db, options);
  auto history = db->RecordedHistory();
  ADYA_CHECK(history.ok());
  Classification c = Classify(*history);
  std::printf(
      "%-12s @ %-7s: %3d committed, %2d engine-aborted, %4d lock retries — "
      "%s\n",
      std::string(SchemeName(scheme)).c_str(),
      std::string(IsolationLevelName(level)).c_str(), stats.committed,
      stats.aborted_engine, stats.would_block_retries, c.Summary().c_str());
  CheckReport check = Check(*history, level);
  ADYA_CHECK_MSG(check.satisfied, "engine violated its own level!");
}

void WriteSkewUnderSI() {
  std::printf(
      "\n--- snapshot isolation write skew, caught by the checker ---\n");
  auto db = Database::Create(Scheme::kMultiversion, Database::Options{});
  RelationId rel = db->AddRelation("oncall");
  auto setup = *db->Begin(IsolationLevel::kPLSI);
  ADYA_CHECK(db->Write(setup, ObjKey{rel, "alice"}, ScalarRow(1)).ok());
  ADYA_CHECK(db->Write(setup, ObjKey{rel, "bob"}, ScalarRow(1)).ok());
  ADYA_CHECK(db->Commit(setup).ok());

  // Each doctor checks that the other is on call, then signs off.
  auto t1 = *db->Begin(IsolationLevel::kPLSI);
  auto t2 = *db->Begin(IsolationLevel::kPLSI);
  ADYA_CHECK(db->Read(t1, ObjKey{rel, "bob"}).ok());
  ADYA_CHECK(db->Read(t2, ObjKey{rel, "alice"}).ok());
  ADYA_CHECK(db->Write(t1, ObjKey{rel, "alice"}, ScalarRow(0)).ok());
  ADYA_CHECK(db->Write(t2, ObjKey{rel, "bob"}, ScalarRow(0)).ok());
  ADYA_CHECK(db->Commit(t1).ok());
  ADYA_CHECK(db->Commit(t2).ok());  // SI admits it: both signed off!

  auto history = db->RecordedHistory();
  ADYA_CHECK(history.ok());
  std::printf("%s\n", FormatHistory(*history).c_str());
  Classification c = Classify(*history);
  std::printf("PL-SI: %s (the engine kept its promise)\n",
              c.Satisfies(IsolationLevel::kPLSI) ? "satisfied" : "violated");
  std::printf("PL-3:  %s\n",
              c.Satisfies(IsolationLevel::kPL3) ? "satisfied" : "violated");
  Checker checker(*history);
  if (auto g2 = checker.CheckPhenomenon(Phenomenon::kG2)) {
    std::printf("\n%s\n", g2->description.c_str());
  }

  // The same history, the Jepsen way: render it as an Elle list-append
  // log, ingest it back through the HistorySource registry, and certify
  // the reconstruction — the verdict survives the round trip.
  std::printf("\n--- the same execution as an Elle list-append log ---\n");
  auto log = ingest::ExportElleAppend(*history);
  ADYA_CHECK_MSG(log.ok(), log.status());
  std::printf("%s", log->c_str());
  auto loaded = LoadHistory(*log, "elle-append");
  ADYA_CHECK_MSG(loaded.ok(), loaded.status());
  std::string report = loaded->report.ToString();
  if (!report.empty()) std::printf("%s\n", report.c_str());
  Classification reimported = Classify(loaded->history);
  std::printf("reimported: %s\n", reimported.Summary().c_str());
  ADYA_CHECK_MSG(reimported.Satisfies(IsolationLevel::kPLSI) ==
                         c.Satisfies(IsolationLevel::kPLSI) &&
                     reimported.Satisfies(IsolationLevel::kPL3) ==
                         c.Satisfies(IsolationLevel::kPL3),
                 "round trip changed the verdict!");
}

}  // namespace

int main() {
  ingest::RegisterElleFormats();
  std::printf("Auditing engine executions against their promised levels:\n");
  AuditScheme(Scheme::kLocking, IsolationLevel::kPL1);
  AuditScheme(Scheme::kLocking, IsolationLevel::kPL2);
  AuditScheme(Scheme::kLocking, IsolationLevel::kPL299);
  AuditScheme(Scheme::kLocking, IsolationLevel::kPL3);
  AuditScheme(Scheme::kOptimistic, IsolationLevel::kPL2);
  AuditScheme(Scheme::kOptimistic, IsolationLevel::kPL3);
  AuditScheme(Scheme::kMultiversion, IsolationLevel::kPLSI);
  WriteSkewUnderSI();
  return 0;
}
