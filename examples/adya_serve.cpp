// adya_serve: certification as a long-running service. Clients connect over
// TCP or a Unix-domain socket, open one session each (a PL level + an
// IncrementalChecker), and stream event batches in the history notation;
// the daemon streams verdicts and witnesses back (see src/serve/framing.h
// for the protocol). Metrics are scrapable on a side HTTP port:
// /metrics (Prometheus) and /statsz (JSON).
//
//   adya_serve --port=7478 --http-port=7479 --workers=4
//   adya_serve --port=0 --unix=/tmp/adya.sock --port-file=/tmp/adya.port
//
// SIGTERM/SIGINT drain gracefully: listeners stop, in-flight batches still
// certify and their verdicts still go out, then the process exits 0.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/http.h"
#include "serve/server.h"

namespace {

using namespace adya;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host=ADDR        listen address (default 127.0.0.1)\n"
      "  --port=N           TCP port; 0 = ephemeral, -1 = no TCP (default 0)\n"
      "  --unix=PATH        also listen on a Unix-domain socket\n"
      "  --http-port=N      metrics HTTP port; 0 = ephemeral, -1 = none "
      "(default 0)\n"
      "  --workers=N        certification worker shards (default 4)\n"
      "  --max-pending=N    per-connection in-flight batch bound (default "
      "64)\n"
      "  --drain-batches=N  batches one worker wakeup drains (default 8)\n"
      "  --check-threads=N  per-session thread ceiling for the checkers'\n"
      "                     offline witness passes (default 1; OPEN's\n"
      "                     check_threads can lower, never raise, it)\n"
      "  --gc-watermark=N   enable the checkers' prefix GC, attempted every "
      "N commits\n"
      "  --gc-min-window=N  minimum trailing events the prefix GC keeps "
      "(default 8192)\n"
      "  --port-file=PATH   write \"tcp=PORT http=PORT\" once bound (for "
      "scripts)\n",
      argv0);
  std::exit(2);
}

bool ParseInt(const std::string& value, int* out) {
  try {
    size_t pos = 0;
    *out = std::stoi(value, &pos);
    return pos == value.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeOptions options;
  int http_port = 0;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--host=", 0) == 0) {
      options.host = value("--host=");
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!ParseInt(value("--port="), &options.port)) Usage(argv[0]);
    } else if (arg.rfind("--unix=", 0) == 0) {
      options.unix_path = value("--unix=");
    } else if (arg.rfind("--http-port=", 0) == 0) {
      if (!ParseInt(value("--http-port="), &http_port)) Usage(argv[0]);
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!ParseInt(value("--workers="), &options.workers)) Usage(argv[0]);
    } else if (arg.rfind("--max-pending=", 0) == 0) {
      if (!ParseInt(value("--max-pending="), &options.max_pending)) {
        Usage(argv[0]);
      }
    } else if (arg.rfind("--drain-batches=", 0) == 0) {
      if (!ParseInt(value("--drain-batches="), &options.drain_batches)) {
        Usage(argv[0]);
      }
    } else if (arg.rfind("--check-threads=", 0) == 0) {
      if (!ParseInt(value("--check-threads="), &options.check_threads) ||
          options.check_threads < 1) {
        Usage(argv[0]);
      }
    } else if (arg.rfind("--gc-watermark=", 0) == 0) {
      int n = 0;
      if (!ParseInt(value("--gc-watermark="), &n) || n < 1) Usage(argv[0]);
      options.gc.enabled = true;
      options.gc.watermark_interval = static_cast<uint64_t>(n);
    } else if (arg.rfind("--gc-min-window=", 0) == 0) {
      int n = 0;
      if (!ParseInt(value("--gc-min-window="), &n) || n < 1) Usage(argv[0]);
      options.gc.min_window_events = static_cast<uint64_t>(n);
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = value("--port-file=");
    } else {
      Usage(argv[0]);
    }
  }

  // Block the termination signals before any thread starts, so every
  // thread inherits the mask and only the sigwait below ever sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  obs::StatsRegistry stats;
  options.stats = &stats;
  serve::Server server(options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "adya_serve: %s\n", s.ToString().c_str());
    return 1;
  }
  serve::HttpExporter* http = nullptr;
  serve::HttpExporter exporter(options.host, http_port < 0 ? 0 : http_port,
                               &stats);
  if (http_port >= 0) {
    if (Status s = exporter.Start(); !s.ok()) {
      std::fprintf(stderr, "adya_serve: metrics: %s\n", s.ToString().c_str());
      return 1;
    }
    http = &exporter;
  }

  if (server.port() >= 0) {
    std::printf("adya_serve: listening on %s:%d\n", options.host.c_str(),
                server.port());
  }
  if (!options.unix_path.empty()) {
    std::printf("adya_serve: listening on unix:%s\n",
                options.unix_path.c_str());
  }
  if (http != nullptr) {
    std::printf("adya_serve: metrics on http://%s:%d/metrics\n",
                options.host.c_str(), http->port());
  }
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "tcp=%d http=%d\n", server.port(),
                   http != nullptr ? http->port() : -1);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "adya_serve: cannot write %s\n", port_file.c_str());
      return 1;
    }
  }

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("adya_serve: %s, draining...\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  server.Shutdown();
  if (http != nullptr) http->Shutdown();
  std::printf("adya_serve: drained %llu connection(s), bye\n",
              static_cast<unsigned long long>(server.connections_accepted()));
  return 0;
}
