// adya_stress — multi-threaded stress & online-certification driver.
//
// Hammers a blocking-mode engine from N worker threads with a randomized,
// fault-injected transaction mix while a certifier thread audits the
// committed prefix of the recorded history against the target isolation
// level, pipelined with execution. Prints one JSON metrics record to
// stdout; exits non-zero if any proscribed phenomenon was observed.
//
// Examples:
//   adya_stress --scheme=locking --level=PL-3 --threads=8 --duration=2s
//   adya_stress --scheme=multiversion --level=PL-SI --faults=chaos
//   adya_stress --scheme=locking --level=PL-2 --certify-level=PL-3
//
// Flags (all --key=value):
//   --scheme=locking|optimistic|multiversion   (default locking)
//   --level=PL-1|PL-2|PL-2.99|PL-3|PL-SI       (default PL-3)
//   --certify-level=<level>    certify against a different level
//   --threads=N                (default 4)
//   --duration=2s|500ms|1500   (default 1s; bare numbers are ms)
//   --txns=N                   per-thread transaction cap (0 = none)
//   --keys=N                   key-space size (default 16)
//   --ops=N                    operations per transaction (default 4)
//   --seed=N                   (default 1)
//   --mix=R:W:D:PR:PU          op-mix weights (default 4:3:0.5:1:1)
//   --faults=none|default|chaos  fault-plan preset (default default)
//   --abort-prob=P --delay-prob=P --delay-us=N --hold-prob=P --hold-ms=N
//   --certify-every=25ms       certifier cadence (0 = only final check)
//   --check-threads=N          certifier checker parallelism (default 1 =
//                              the serial checker; N>1 uses the parallel
//                              certification core, identical verdicts)
//   --certify-batch=N          committed-prefix snapshots certified per
//                              drain cycle (default 1 = full prefix only)
//   --check-mode=serial|parallel|incremental   checker implementation
//   --incremental              incremental certification: fold each commit
//                              into a persistent DSG (exact per-commit
//                              attribution, same verdicts; supersedes
//                              --check-threads/--certify-batch)
//   --gc-watermark=N           certified-stable-prefix GC every N commits
//                              (incremental only; default off, DESIGN §12)
//   --gc-min-window=N          min live events GC keeps (default 8192)
//   --stats                    enable instrumentation (DESIGN.md §9) and
//                              print the stats snapshot JSON to stderr
//   --stats-out=FILE           write the stats snapshot JSON to FILE
//   --prom-out=FILE            write the snapshot in Prometheus text format
//   --trace-out=FILE           write the phase trace as JSON lines
//                              (each of the three file flags implies --stats)
//   --quiet                    suppress the human-readable summary line
//
// Offline certification (no engine run): --certify-file=FILE loads a
// recorded history through the HistorySource registry — the paper notation
// or an Elle/Jepsen log — and certifies it with the configured checker:
//   adya_stress --certify-file=run.edn --input-format=elle-append
//               --certify-level=PL-SI --check-mode=parallel
//   --certify-file=FILE        certify FILE instead of running a stress
//                              workload ('-' reads stdin)
//   --input-format=auto|adya|elle-append|elle-register   (default auto)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/checker_api.h"
#include "history/source.h"
#include "ingest/elle.h"
#include "obs/stats.h"
#include "stress/stress.h"

namespace {

using namespace adya;
using stress::StressOptions;

[[noreturn]] void Usage(const std::string& error) {
  std::fprintf(stderr, "adya_stress: %s\n(see the header of %s for flags)\n",
               error.c_str(), __FILE__);
  std::exit(2);
}

std::optional<engine::Scheme> ParseScheme(const std::string& name) {
  for (engine::Scheme s :
       {engine::Scheme::kLocking, engine::Scheme::kOptimistic,
        engine::Scheme::kMultiversion}) {
    if (name == engine::SchemeName(s)) return s;
  }
  return std::nullopt;
}

std::optional<IsolationLevel> ParseLevel(std::string name) {
  for (char& c : name) c = static_cast<char>(std::toupper(c));
  for (IsolationLevel l :
       {IsolationLevel::kPL1, IsolationLevel::kPL2, IsolationLevel::kPLCS,
        IsolationLevel::kPL2Plus, IsolationLevel::kPL299,
        IsolationLevel::kPLSI, IsolationLevel::kPL3}) {
    if (name == IsolationLevelName(l)) return l;
  }
  return std::nullopt;
}

/// "2s" → 2000, "500ms" → 500, "1500" → 1500 (milliseconds).
std::optional<std::chrono::milliseconds> ParseDuration(
    const std::string& text) {
  size_t pos = 0;
  double value = 0;
  try {
    value = std::stod(text, &pos);
  } catch (...) {
    return std::nullopt;
  }
  std::string unit = text.substr(pos);
  double ms;
  if (unit.empty() || unit == "ms") {
    ms = value;
  } else if (unit == "s") {
    ms = value * 1000;
  } else if (unit == "m") {
    ms = value * 60 * 1000;
  } else {
    return std::nullopt;
  }
  return std::chrono::milliseconds(static_cast<int64_t>(ms));
}

double ParseProb(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  double p = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || p < 0 || p > 1) {
    Usage(StrCat(flag, " wants a probability in [0,1], got '", text, "'"));
  }
  return p;
}

int64_t ParseInt(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  int64_t v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    Usage(StrCat(flag, " wants an integer, got '", text, "'"));
  }
  return v;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) Usage(StrCat("cannot open '", path, "' for writing"));
  std::fputs(content.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  StressOptions options;
  options.faults.voluntary_abort_prob = 0.05;
  // The checker flag vocabulary (--check-mode, --check-threads,
  // --certify-batch, --incremental) is owned by CheckerOptions so the
  // stress driver and the benches cannot drift apart.
  CheckerOptions checker_flags;
  bool quiet = false;
  bool want_stats = false;
  std::string certify_file;
  std::string stats_out, prom_out, trace_out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--stats") {
      want_stats = true;
      continue;
    }
    {
      std::string error;
      if (checker_flags.ParseFlag(arg, &error)) {
        if (!error.empty()) Usage(error);
        continue;
      }
    }
    size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      Usage(StrCat("unrecognized argument '", arg, "'"));
    }
    std::string key = arg.substr(0, eq);
    std::string value = arg.substr(eq + 1);
    if (key == "--scheme") {
      auto scheme = ParseScheme(value);
      if (!scheme) Usage(StrCat("unknown scheme '", value, "'"));
      options.scheme = *scheme;
    } else if (key == "--level") {
      auto level = ParseLevel(value);
      if (!level) Usage(StrCat("unknown level '", value, "'"));
      options.level = *level;
    } else if (key == "--certify-level") {
      auto level = ParseLevel(value);
      if (!level) Usage(StrCat("unknown level '", value, "'"));
      options.certify_level = *level;
    } else if (key == "--threads") {
      options.threads = static_cast<int>(ParseInt(key, value));
    } else if (key == "--duration") {
      auto d = ParseDuration(value);
      if (!d) Usage(StrCat("bad duration '", value, "' (try 2s or 500ms)"));
      options.duration = *d;
    } else if (key == "--txns") {
      options.max_txns_per_thread = static_cast<int>(ParseInt(key, value));
    } else if (key == "--keys") {
      options.num_keys = static_cast<int>(ParseInt(key, value));
    } else if (key == "--ops") {
      options.ops_per_txn = static_cast<int>(ParseInt(key, value));
    } else if (key == "--seed") {
      options.seed = static_cast<uint64_t>(ParseInt(key, value));
    } else if (key == "--mix") {
      std::vector<std::string> parts = StrSplit(value, ':');
      if (parts.size() != 5) Usage("--mix wants R:W:D:PR:PU weights");
      options.mix.read_weight = std::atof(parts[0].c_str());
      options.mix.write_weight = std::atof(parts[1].c_str());
      options.mix.delete_weight = std::atof(parts[2].c_str());
      options.mix.pred_read_weight = std::atof(parts[3].c_str());
      options.mix.pred_update_weight = std::atof(parts[4].c_str());
    } else if (key == "--faults") {
      if (value == "none") {
        options.faults = stress::FaultPlan::None();
      } else if (value == "chaos") {
        options.faults = stress::FaultPlan::Chaos();
      } else if (value == "default") {
        options.faults = stress::FaultPlan();
      } else {
        Usage(StrCat("unknown fault preset '", value, "'"));
      }
    } else if (key == "--abort-prob") {
      options.faults.voluntary_abort_prob = ParseProb(key, value);
    } else if (key == "--delay-prob") {
      options.faults.delay_prob = ParseProb(key, value);
    } else if (key == "--delay-us") {
      options.faults.max_delay =
          std::chrono::microseconds(ParseInt(key, value));
    } else if (key == "--hold-prob") {
      options.faults.hold_prob = ParseProb(key, value);
    } else if (key == "--hold-ms") {
      options.faults.hold = std::chrono::milliseconds(ParseInt(key, value));
    } else if (key == "--certify-every") {
      auto d = ParseDuration(value);
      if (!d) Usage(StrCat("bad interval '", value, "'"));
      options.certify_interval = *d;
    } else if (key == "--certify-file") {
      if (value.empty()) Usage("--certify-file wants a path (or -)");
      certify_file = value;
    } else if (key == "--stats-out") {
      stats_out = value;
    } else if (key == "--prom-out") {
      prom_out = value;
    } else if (key == "--trace-out") {
      trace_out = value;
    } else {
      Usage(StrCat("unknown flag '", key, "'"));
    }
  }
  options.check_threads = checker_flags.threads;
  options.certify_batch = checker_flags.certify_batch;
  options.certify_incremental = checker_flags.mode == CheckMode::kIncremental;
  options.gc = checker_flags.gc;
  if (!stats_out.empty() || !prom_out.empty() || !trace_out.empty()) {
    want_stats = true;
  }
  obs::StatsRegistry registry;
  if (want_stats) options.stats = &registry;

  if (!certify_file.empty()) {
    ingest::RegisterElleFormats();
    std::ostringstream buffer;
    if (certify_file == "-") {
      buffer << std::cin.rdbuf();
    } else {
      std::ifstream file(certify_file);
      if (!file) {
        std::fprintf(stderr, "adya_stress: cannot open %s\n",
                     certify_file.c_str());
        return 2;
      }
      buffer << file.rdbuf();
    }
    if (want_stats) checker_flags.stats = &registry;
    auto loaded = LoadHistory(buffer.str(), checker_flags.input_format,
                              checker_flags.stats);
    if (!loaded.ok()) {
      std::fprintf(stderr, "adya_stress: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    std::string ingested = loaded->report.ToString();
    if (!ingested.empty() && !quiet) {
      std::fprintf(stderr, "%s\n", ingested.c_str());
    }
    IsolationLevel level = options.certify_level.value_or(options.level);
    Checker checker(loaded->history, checker_flags);
    CheckReport result = checker.Check(level);
    std::printf(
        "{\"certify_file\": \"%s\", \"format\": \"%s\", \"level\": \"%s\", "
        "\"mode\": \"%s\", \"txns\": %llu, \"ops\": %llu, \"satisfied\": %s, "
        "\"violations\": %zu}\n",
        certify_file.c_str(), loaded->report.format.c_str(),
        std::string(IsolationLevelName(level)).c_str(),
        std::string(CheckModeName(result.mode)).c_str(),
        static_cast<unsigned long long>(loaded->report.txns),
        static_cast<unsigned long long>(loaded->report.ops),
        result.satisfied ? "true" : "false", result.violations.size());
    if (want_stats) {
      obs::StatsSnapshot snapshot = registry.Snapshot();
      if (stats_out.empty()) {
        std::fprintf(stderr, "%s\n", snapshot.ToJson().c_str());
      } else {
        WriteFileOrDie(stats_out, snapshot.ToJson());
      }
      if (!prom_out.empty()) WriteFileOrDie(prom_out, snapshot.ToPrometheus());
    }
    for (const Violation& v : result.violations) {
      std::fprintf(stderr, "violation %s: %s\n",
                   std::string(PhenomenonName(v.phenomenon)).c_str(),
                   v.description.c_str());
    }
    return result.satisfied ? 0 : 1;
  }

  auto report = stress::RunStress(options);
  if (!report.ok()) {
    std::fprintf(stderr, "adya_stress: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", report->ToJson().c_str());
  if (want_stats) {
    obs::StatsSnapshot snapshot = registry.Snapshot();
    if (stats_out.empty()) {
      std::fprintf(stderr, "%s\n", snapshot.ToJson().c_str());
    } else {
      WriteFileOrDie(stats_out, snapshot.ToJson());
    }
    if (!prom_out.empty()) WriteFileOrDie(prom_out, snapshot.ToPrometheus());
    if (!trace_out.empty()) {
      WriteFileOrDie(trace_out, registry.trace().ToJsonLines());
    }
  }
  if (!quiet) {
    const stress::RunMetrics& m = report->metrics;
    std::fprintf(
        stderr,
        "# %s @ %s, %d threads, %.2fs: %llu committed (%.0f txn/s), "
        "%llu deadlock aborts, %llu validation aborts, commit latency "
        "p50=%lluus p95=%lluus p99=%lluus — %s\n",
        m.scheme.c_str(), m.level.c_str(), m.threads, m.duration_seconds,
        static_cast<unsigned long long>(m.committed), m.Throughput(),
        static_cast<unsigned long long>(m.aborted_deadlock),
        static_cast<unsigned long long>(m.aborted_validation),
        static_cast<unsigned long long>(m.commit_latency.Percentile(50)),
        static_cast<unsigned long long>(m.commit_latency.Percentile(95)),
        static_cast<unsigned long long>(m.commit_latency.Percentile(99)),
        report->ok() ? "certified clean"
                     : "PROSCRIBED PHENOMENA OBSERVED");
  }
  if (!report->ok()) {
    for (const Violation& v : report->violations) {
      std::fprintf(stderr, "violation %s: %s\n",
                   std::string(PhenomenonName(v.phenomenon)).c_str(),
                   v.description.c_str());
    }
    return 1;
  }
  return 0;
}
