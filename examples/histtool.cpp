// histtool — command-line front end for the checker:
//
//   histtool check <file>          classify a history against every level
//   histtool dsg <file>            print the DSG edges and Graphviz DOT
//   histtool minimize <file> <PL>  shrink to a minimal witness violating PL
//   histtool fmt <file>            reformat canonically (paper notation)
//
// Histories load through the HistorySource registry (history/source.h):
// the native paper notation plus the Elle/Jepsen adapters. The format is
// sniffed from the content by default; --input-format=NAME pins it. A
// non-native input prints its ingestion report (inference diagnostics) to
// stderr before the command output.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/certifier.h"
#include "core/levels.h"
#include "core/minimize.h"
#include "history/format.h"
#include "history/source.h"
#include "ingest/elle.h"

namespace {

using namespace adya;

int Usage() {
  std::fprintf(stderr,
               "usage: histtool check|dsg|fmt <file>\n"
               "       histtool minimize <file> <level>\n"
               "options: --input-format=auto|adya|elle-append|elle-register\n"
               "levels: PL-1 PL-2 PL-CS PL-2+ PL-2.99 PL-SI PL-3\n"
               "<file> may be '-' to read the history from stdin\n");
  return 2;
}

Result<LoadedHistory> Load(const std::string& path,
                           const std::string& format) {
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream file(path);
    if (!file) return Status::NotFound("cannot open " + path);
    buffer << file.rdbuf();
  }
  return LoadHistory(buffer.str(), format);
}

Result<IsolationLevel> LevelByName(const std::string& name) {
  for (IsolationLevel level :
       {IsolationLevel::kPL1, IsolationLevel::kPL2, IsolationLevel::kPLCS,
        IsolationLevel::kPL2Plus, IsolationLevel::kPL299,
        IsolationLevel::kPLSI, IsolationLevel::kPL3}) {
    if (IsolationLevelName(level) == name) return level;
  }
  return Status::InvalidArgument("unknown level " + name);
}

int Check(const History& h) {
  Classification c = Classify(h);
  std::printf("%s\n\n", c.Summary().c_str());
  for (const auto& [level, ok] : c.satisfied) {
    std::printf("  %-8s %s\n", std::string(IsolationLevelName(level)).c_str(),
                ok ? "satisfied" : "violated");
  }
  for (const Violation& v : c.violations) {
    std::printf("\n%s\n", v.description.c_str());
  }
  return c.violations.empty() ? 0 : 1;
}

int PrintDsg(const History& h) {
  Dsg dsg(h);
  std::printf("edges: %s\n\n%s", dsg.EdgeSummary().c_str(),
              dsg.ToDot().c_str());
  auto order = dsg.SerializationOrder();
  if (order.has_value()) {
    std::printf("serialization order:");
    for (TxnId t : *order) std::printf(" T%u", t);
    std::printf("\n");
  } else {
    std::printf("no serialization order (the DSG is cyclic)\n");
  }
  return 0;
}

int MinimizeCmd(const History& h, IsolationLevel level) {
  LevelCheckResult check = CheckLevel(h, level);
  if (check.satisfied) {
    std::printf("history already satisfies %s; nothing to minimize\n",
                std::string(IsolationLevelName(level)).c_str());
    return 1;
  }
  History min = MinimizeForLevelViolation(h, level);
  std::printf("# minimized from %zu to %zu events\n%s",
              h.events().size(), min.events().size(),
              FormatHistory(min).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ingest::RegisterElleFormats();
  std::string format;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--input-format=", 0) == 0) {
      format = std::string(arg.substr(std::strlen("--input-format=")));
      if (format.empty()) return Usage();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return Usage();
    } else {
      args.push_back(std::string(arg));
    }
  }
  if (args.size() < 2) return Usage();
  auto loaded = Load(args[1], format);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 2;
  }
  std::string report = loaded->report.ToString();
  if (!report.empty()) std::fprintf(stderr, "%s\n", report.c_str());
  const History& history = loaded->history;
  if (args[0] == "check") return Check(history);
  if (args[0] == "dsg") return PrintDsg(history);
  if (args[0] == "fmt") {
    std::printf("%s", FormatHistory(history).c_str());
    return 0;
  }
  if (args[0] == "minimize" && args.size() >= 3) {
    auto level = LevelByName(args[2]);
    if (!level.ok()) {
      std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
      return 2;
    }
    return MinimizeCmd(history, *level);
  }
  return Usage();
}
