// histtool — command-line front end for the checker:
//
//   histtool check <file>          classify a history against every level
//   histtool dsg <file>            print the DSG edges and Graphviz DOT
//   histtool minimize <file> <PL>  shrink to a minimal witness violating PL
//   histtool fmt <file>            reformat canonically
//
// History files use the paper notation (see src/history/parser.h).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/certifier.h"
#include "core/levels.h"
#include "core/minimize.h"
#include "history/format.h"
#include "history/parser.h"

namespace {

using namespace adya;

int Usage() {
  std::fprintf(stderr,
               "usage: histtool check|dsg|fmt <file>\n"
               "       histtool minimize <file> <level>\n"
               "levels: PL-1 PL-2 PL-CS PL-2+ PL-2.99 PL-SI PL-3\n"
               "<file> may be '-' to read the history from stdin\n");
  return 2;
}

Result<History> Load(const char* path) {
  std::ostringstream buffer;
  if (std::strcmp(path, "-") == 0) {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream file(path);
    if (!file) return Status::NotFound(std::string("cannot open ") + path);
    buffer << file.rdbuf();
  }
  return ParseHistory(buffer.str());
}

Result<IsolationLevel> LevelByName(const char* name) {
  for (IsolationLevel level :
       {IsolationLevel::kPL1, IsolationLevel::kPL2, IsolationLevel::kPLCS,
        IsolationLevel::kPL2Plus, IsolationLevel::kPL299,
        IsolationLevel::kPLSI, IsolationLevel::kPL3}) {
    if (IsolationLevelName(level) == name) return level;
  }
  return Status::InvalidArgument(std::string("unknown level ") + name);
}

int Check(const History& h) {
  Classification c = Classify(h);
  std::printf("%s\n\n", c.Summary().c_str());
  for (const auto& [level, ok] : c.satisfied) {
    std::printf("  %-8s %s\n", std::string(IsolationLevelName(level)).c_str(),
                ok ? "satisfied" : "violated");
  }
  for (const Violation& v : c.violations) {
    std::printf("\n%s\n", v.description.c_str());
  }
  return c.violations.empty() ? 0 : 1;
}

int PrintDsg(const History& h) {
  Dsg dsg(h);
  std::printf("edges: %s\n\n%s", dsg.EdgeSummary().c_str(),
              dsg.ToDot().c_str());
  auto order = dsg.SerializationOrder();
  if (order.has_value()) {
    std::printf("serialization order:");
    for (TxnId t : *order) std::printf(" T%u", t);
    std::printf("\n");
  } else {
    std::printf("no serialization order (the DSG is cyclic)\n");
  }
  return 0;
}

int MinimizeCmd(const History& h, IsolationLevel level) {
  LevelCheckResult check = CheckLevel(h, level);
  if (check.satisfied) {
    std::printf("history already satisfies %s; nothing to minimize\n",
                std::string(IsolationLevelName(level)).c_str());
    return 1;
  }
  History min = MinimizeForLevelViolation(h, level);
  std::printf("# minimized from %zu to %zu events\n%s",
              h.events().size(), min.events().size(),
              FormatHistory(min).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto history = Load(argv[2]);
  if (!history.ok()) {
    std::fprintf(stderr, "%s\n", history.status().ToString().c_str());
    return 2;
  }
  if (std::strcmp(argv[1], "check") == 0) return Check(*history);
  if (std::strcmp(argv[1], "dsg") == 0) return PrintDsg(*history);
  if (std::strcmp(argv[1], "fmt") == 0) {
    std::printf("%s", FormatHistory(*history).c_str());
    return 0;
  }
  if (std::strcmp(argv[1], "minimize") == 0 && argc >= 4) {
    auto level = LevelByName(argv[3]);
    if (!level.ok()) {
      std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
      return 2;
    }
    return MinimizeCmd(*history, *level);
  }
  return Usage();
}
