// The paper's §3 story, runnable: two bank accounts with the invariant
// x + y = 10. Histories H1/H2 (invariant observed broken) are rejected by
// PL-3 — good. Histories H1'/H2' are perfectly serializable, yet the
// preventative phenomena P1/P2 reject them too: the ANSI-as-locking
// definitions outlaw legitimate optimistic and multi-version executions.

#include <cstdio>

#include "core/levels.h"
#include "core/paper_histories.h"
#include "core/preventative.h"
#include "history/format.h"

namespace {

void Analyze(const adya::PaperHistory& ph) {
  using namespace adya;
  std::printf("---- %s (%s) ----\n", ph.name.c_str(), ph.paper_ref.c_str());
  std::printf("%s\n", ph.claim.c_str());
  std::printf("\n%s\n", FormatHistory(ph.history).c_str());

  Classification c = Classify(ph.history);
  std::printf("Generalized: %s\n", c.Summary().c_str());

  DegreeCheckResult serializable =
      CheckDegree(ph.history, LockingDegree::kSerializable);
  std::printf("Preventative SERIALIZABLE: %s\n",
              serializable.allowed ? "allowed" : "REJECTED");
  for (const PreventativeViolation& v : serializable.violations) {
    std::printf("  %s\n", v.description.c_str());
  }

  bool pl3 = c.Satisfies(IsolationLevel::kPL3);
  if (pl3 && !serializable.allowed) {
    std::printf(
        ">> the preventative approach forbids this serializable execution —\n"
        ">> exactly the over-restriction the paper corrects.\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Invariant: x + y = 10. T1 moves 4 from x to y; T2 audits both.\n\n");
  Analyze(adya::MakeH1());
  Analyze(adya::MakeH2());
  Analyze(adya::MakeH1Prime());
  Analyze(adya::MakeH2Prime());
  return 0;
}
