// §5.5, mixed systems: transactions choose their own levels, and each gets
// exactly its own guarantees. Builds a mixed history, shows the Mixed
// Serialization Graph (smaller than the DSG: lower-level transactions waive
// edges), and checks Definition 9 (mixing-correctness) — including a case
// that is fine for the levels its transactions chose but would not be
// serializable.

#include <cstdio>

#include "core/dsg.h"
#include "core/levels.h"
#include "core/msg.h"
#include "history/format.h"
#include "history/source.h"

namespace {

using namespace adya;

void Analyze(const char* title, const char* text) {
  std::printf("---- %s ----\n", title);
  auto loaded = LoadHistory(text);
  ADYA_CHECK_MSG(loaded.ok(), loaded.status());
  const History& h = loaded->history;
  std::printf("%s\n", FormatHistory(h).c_str());
  Dsg dsg(h);
  std::printf("DSG edges: %s\n", dsg.EdgeSummary().c_str());
  auto msg = Msg::Build(h);
  ADYA_CHECK(msg.ok());
  std::printf("MSG edges: %s\n", msg->EdgeSummary().c_str());
  auto mix = CheckMixingCorrect(h);
  ADYA_CHECK(mix.ok());
  std::printf("mixing-correct: %s\n", mix->mixing_correct ? "yes" : "NO");
  for (const std::string& p : mix->problems) std::printf("  %s\n", p.c_str());
  Classification c = Classify(h);
  std::printf("(for reference, as an all-PL-3 history it would be: %s)\n\n",
              c.Summary().c_str());
}

}  // namespace

int main() {
  // A PL-2 reporting transaction T1 reads while PL-3 writers churn: its
  // anti-dependencies are waived (reads need only be committed data), so
  // the mix is correct even though the history is not serializable.
  Analyze("PL-2 reader among PL-3 writers",
          "level 1 PL-2;\n"
          "w2(x2) w2(y2) c2 "
          "r1(x2) w3(x3) w3(y3) c3 r1(y3) c1");

  // The same interleaving with T1 at PL-3 is mixing-incorrect: T1's
  // inconsistent read now matters (obligatory anti-dependency edge).
  Analyze("the same reader, now at PL-3",
          "w2(x2) w2(y2) c2 "
          "r1(x2) w3(x3) w3(y3) c3 r1(y3) c1");

  // An anti-dependency edge from a PL-3 transaction to a PL-1 transaction
  // is obligatory (§5.5's example): the PL-1 writer must still respect the
  // PL-3 reader's serialization position.
  Analyze("obligatory edge into a PL-1 transaction",
          "level 2 PL-1;\n"
          "w0(x0) c0 r1(x0) c1 w2(x2) c2");
  return 0;
}
