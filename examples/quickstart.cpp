// Quickstart: parse a transaction history in the paper's notation, build
// its Direct Serialization Graph, and classify its isolation level.
//
//   $ ./quickstart            # analyzes a built-in write-skew history
//   $ ./quickstart my.hist    # analyzes a history file

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/levels.h"
#include "history/format.h"
#include "history/source.h"

namespace {

constexpr char kWriteSkew[] = R"(
# Write skew: T1 and T2 each check the invariant x + y >= 0 and then
# withdraw from different accounts. Both commit under snapshot isolation;
# the result is not serializable.
w0(x0, 50) w0(y0, 50) c0
b1 b2
r1(x0, 50) r1(y0, 50)
r2(x0, 50) r2(y0, 50)
w1(x1, -40) w2(y2, -40)
c1 c2
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kWriteSkew;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  auto loaded = adya::LoadHistory(text);
  if (!loaded.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const adya::History& history = loaded->history;

  std::printf("History:\n%s\n", adya::FormatHistory(history).c_str());

  adya::Dsg dsg(history);
  std::printf("DSG edges: %s\n\n", dsg.EdgeSummary().c_str());

  adya::Classification c = adya::Classify(history);
  std::printf("%s\n\n", c.Summary().c_str());
  for (const auto& [level, ok] : c.satisfied) {
    std::printf("  %-8s %s\n", std::string(IsolationLevelName(level)).c_str(),
                ok ? "satisfied" : "violated");
  }
  if (!c.violations.empty()) {
    std::printf("\nWitnesses:\n");
    for (const adya::Violation& v : c.violations) {
      std::printf("%s\n\n", v.description.c_str());
    }
  }
  return 0;
}
