// The payroll phantom of §5.4: an auditor sums the Sales salaries and
// cross-checks a maintained total while someone hires a new Sales employee.
// Shows how the generalized definitions handle predicates: the phantom
// history passes PL-2.99 (REPEATABLE READ) but fails PL-3, and the conflict
// analyzer explains the cycle via a predicate anti-dependency.

#include <cstdio>

#include "core/checker_api.h"
#include "core/levels.h"
#include "core/paper_histories.h"
#include "history/builder.h"
#include "history/format.h"

namespace {

using namespace adya;

void AnalyzePhantom() {
  PaperHistory ph = MakeHPhantom();
  std::printf("---- %s ----\n%s\n\n%s\n", ph.name.c_str(), ph.claim.c_str(),
              FormatHistory(ph.history).c_str());
  Dsg dsg(ph.history);
  std::printf("DSG edges: %s\n\n", dsg.EdgeSummary().c_str());
  Classification c = Classify(ph.history);
  std::printf("PL-2.99: %s (anti-dependency cycles due to predicates are\n"
              "allowed at REPEATABLE READ — §5.4)\n",
              c.Satisfies(IsolationLevel::kPL299) ? "satisfied" : "violated");
  std::printf("PL-3:    %s\n\n",
              c.Satisfies(IsolationLevel::kPL3) ? "satisfied" : "violated");
  Checker checker(ph.history);
  if (auto g2 = checker.CheckPhenomenon(Phenomenon::kG2)) {
    std::printf("%s\n\n", g2->description.c_str());
  }
}

void AnalyzeIrrelevantUpdate() {
  // The flip side (§4.4.1/§4.4.2): a concurrent update that does NOT change
  // the matches of the auditor's predicate creates no conflict at all —
  // the flexibility precision locks have and pure predicate locking lacks.
  HistoryBuilder b;
  b.Relation("Emp").Object("x", "Emp");
  b.Pred("Sales", "dept = \"Sales\"", {"Emp"});
  b.W(0, "x", Row{{"dept", Value("Sales")}, {"phone", Value(1)}});
  b.Commit(0);
  b.PredR(1, "Sales", {"x@0"});
  b.R(1, "x", 0);
  // T2 changes x's phone number mid-audit: irrelevant to Dept=Sales.
  b.W(2, "x", Row{{"dept", Value("Sales")}, {"phone", Value(2)}});
  b.Commit(2);
  b.Commit(1);
  auto h = b.Build();
  ADYA_CHECK(h.ok());
  std::printf("---- irrelevant concurrent update ----\n%s\n",
              FormatHistory(*h).c_str());
  Dsg dsg(*h);
  std::printf("DSG edges: %s\n", dsg.EdgeSummary().c_str());
  Classification c = Classify(*h);
  std::printf(
      "PL-3: %s — no predicate-anti-dependency: T2's phone update does not\n"
      "change the matches, so the audit serializes before the update even\n"
      "though both ran concurrently (a pure predicate-locking system would\n"
      "have blocked T2).\n",
      c.Satisfies(IsolationLevel::kPL3) ? "satisfied" : "violated");
}

}  // namespace

int main() {
  AnalyzePhantom();
  AnalyzeIrrelevantUpdate();
  return 0;
}
